//! Shadow memory: per-location release clocks and plain-memory race
//! detection.
//!
//! The scheduler serializes every instrumented operation (one thread holds
//! the token at a time), so *values* behave sequentially consistent. What
//! this module adds is the *ordering* analysis: each atomic location
//! carries the release "message" clock the C11 model would attach to its
//! latest store, each thread carries an acquire frontier, and every
//! `UnsafeCell` access is checked FastTrack-style against those clocks.
//! Dropping a `Release`/`Acquire`/`SeqCst` pairing to `Relaxed` therefore
//! surfaces as a **data race on the guarded plain memory** even though the
//! token-serialized execution never actually corrupts a value.

use super::clock::VClock;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// How an instrumented atomic touched its location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomKind {
    Load,
    Store,
    /// Read-modify-write (swap/CAS-success/fetch_*). Continues the
    /// location's release sequence: the message clock is joined, never
    /// replaced.
    Rmw,
    /// `std::sync::atomic::fence` — no location.
    Fence,
}

/// Per-thread ordering state.
#[derive(Clone, Default, Debug)]
pub(crate) struct ThreadView {
    /// Everything this thread happens-after.
    pub(crate) clock: VClock,
    /// Snapshot of `clock` at the last release fence: a subsequent
    /// `Relaxed` store publishes this instead of the live clock.
    pub(crate) rel_fence: VClock,
    /// Messages read by `Relaxed` loads since the last acquire fence; an
    /// acquire fence promotes them into `clock`.
    pub(crate) acq_pending: VClock,
}

/// A detected plain-memory race (reported as a checker failure).
#[derive(Debug)]
pub(crate) struct Race {
    pub(crate) message: String,
}

#[derive(Default)]
struct CellState {
    /// Thread + its clock component at the last plain write.
    last_write: Option<(usize, u32)>,
    /// Per-thread clock component at each thread's last plain read.
    reads: VClock,
}

/// All shadow state of one execution.
#[derive(Default)]
pub(crate) struct Shadow {
    /// Release message clock per atomic location (and per mutex/condvar/
    /// park token, which reuse the same release–acquire rules).
    atoms: HashMap<usize, VClock>,
    /// Race-detection state per `UnsafeCell` location.
    cells: HashMap<usize, CellState>,
    /// The global order of `SeqCst` operations.
    sc: VClock,
}

impl Shadow {
    /// Apply one atomic access by `tid`. `views[tid].clock` is bumped: the
    /// access is an event.
    pub(crate) fn atomic(
        &mut self,
        views: &mut [ThreadView],
        tid: usize,
        addr: usize,
        kind: AtomKind,
        ord: Ordering,
    ) {
        let acquire = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let release = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        let seq_cst = ord == Ordering::SeqCst;

        if seq_cst {
            views[tid].clock.join(&self.sc);
        }
        match kind {
            AtomKind::Load => {
                let msg = self.atoms.entry(addr).or_default();
                if acquire {
                    views[tid].clock.join(msg);
                } else {
                    views[tid].acq_pending.join(msg);
                }
            }
            AtomKind::Store => {
                let published = if release {
                    views[tid].clock.clone()
                } else {
                    views[tid].rel_fence.clone()
                };
                self.atoms.insert(addr, published);
            }
            AtomKind::Rmw => {
                let msg = self.atoms.entry(addr).or_default();
                if acquire {
                    views[tid].clock.join(msg);
                } else {
                    views[tid].acq_pending.join(msg);
                }
                // Release sequence: the RMW's message extends, never
                // replaces, what the previous store published.
                let msg = self.atoms.entry(addr).or_default();
                if release {
                    let c = views[tid].clock.clone();
                    msg.join(&c);
                } else {
                    let f = views[tid].rel_fence.clone();
                    msg.join(&f);
                }
            }
            AtomKind::Fence => {
                if acquire {
                    let pending = std::mem::take(&mut views[tid].acq_pending);
                    views[tid].clock.join(&pending);
                }
                if release {
                    views[tid].rel_fence = views[tid].clock.clone();
                }
            }
        }
        if seq_cst {
            self.sc.join(&views[tid].clock);
        }
        views[tid].clock.bump(tid);
    }

    /// Check a plain (`UnsafeCell`) read by `tid`: it races with the last
    /// write unless that write happens-before the reader.
    pub(crate) fn cell_read(
        &mut self,
        views: &[ThreadView],
        tid: usize,
        addr: usize,
        label: &str,
    ) -> Result<(), Race> {
        let cell = self.cells.entry(addr).or_default();
        if let Some((w, at)) = cell.last_write {
            if w != tid && views[tid].clock.get(w) < at {
                return Err(Race {
                    message: format!(
                        "data race on {label} (cell {addr:#x}): thread {tid} reads a value \
                         written by thread {w} without a happens-before edge \
                         (missing release/acquire pairing)"
                    ),
                });
            }
        }
        cell.reads.set(tid, views[tid].clock.get(tid));
        Ok(())
    }

    /// Check a plain (`UnsafeCell`) write by `tid`: it races with the last
    /// write *and* with every read not ordered before it.
    pub(crate) fn cell_write(
        &mut self,
        views: &[ThreadView],
        tid: usize,
        addr: usize,
        label: &str,
    ) -> Result<(), Race> {
        let cell = self.cells.entry(addr).or_default();
        if let Some((w, at)) = cell.last_write {
            if w != tid && views[tid].clock.get(w) < at {
                return Err(Race {
                    message: format!(
                        "data race on {label} (cell {addr:#x}): thread {tid} overwrites a value \
                         written by thread {w} without a happens-before edge"
                    ),
                });
            }
        }
        for r in 0..views.len() {
            if r != tid && cell.reads.get(r) > views[tid].clock.get(r) {
                return Err(Race {
                    message: format!(
                        "data race on {label} (cell {addr:#x}): thread {tid} writes while \
                         thread {r}'s read is not ordered before it"
                    ),
                });
            }
        }
        cell.last_write = Some((tid, views[tid].clock.get(tid)));
        Ok(())
    }

    /// Forget a cell's history (storage reused for a logically new value
    /// whose ownership transfer is proven by other means).
    #[allow(dead_code)]
    pub(crate) fn cell_reset(&mut self, addr: usize) {
        self.cells.remove(&addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<ThreadView> {
        let mut v = vec![ThreadView::default(); n];
        for (t, view) in v.iter_mut().enumerate() {
            view.clock.bump(t);
        }
        v
    }

    #[test]
    fn release_acquire_orders_cell_access() {
        let mut s = Shadow::default();
        let mut v = views(2);
        // T0: write cell, release-store flag. T1: acquire-load flag, read cell.
        s.cell_write(&v, 0, 0x100, "cell").unwrap();
        s.atomic(&mut v, 0, 0x200, AtomKind::Store, Ordering::Release);
        s.atomic(&mut v, 1, 0x200, AtomKind::Load, Ordering::Acquire);
        s.cell_read(&v, 1, 0x100, "cell").unwrap();
    }

    #[test]
    fn relaxed_store_does_not_publish() {
        let mut s = Shadow::default();
        let mut v = views(2);
        s.cell_write(&v, 0, 0x100, "cell").unwrap();
        s.atomic(&mut v, 0, 0x200, AtomKind::Store, Ordering::Relaxed);
        s.atomic(&mut v, 1, 0x200, AtomKind::Load, Ordering::Acquire);
        assert!(s.cell_read(&v, 1, 0x100, "cell").is_err());
    }

    #[test]
    fn fences_pair_relaxed_accesses() {
        let mut s = Shadow::default();
        let mut v = views(2);
        s.cell_write(&v, 0, 0x100, "cell").unwrap();
        // T0: release fence, then relaxed store.
        s.atomic(&mut v, 0, 0, AtomKind::Fence, Ordering::Release);
        s.atomic(&mut v, 0, 0x200, AtomKind::Store, Ordering::Relaxed);
        // T1: relaxed load, then acquire fence.
        s.atomic(&mut v, 1, 0x200, AtomKind::Load, Ordering::Relaxed);
        s.atomic(&mut v, 1, 0, AtomKind::Fence, Ordering::Acquire);
        s.cell_read(&v, 1, 0x100, "cell").unwrap();
    }

    #[test]
    fn rmw_extends_release_sequence() {
        let mut s = Shadow::default();
        let mut v = views(3);
        s.cell_write(&v, 0, 0x100, "cell").unwrap();
        s.atomic(&mut v, 0, 0x200, AtomKind::Store, Ordering::Release);
        // T2 interposes a relaxed RMW — the release sequence survives.
        s.atomic(&mut v, 2, 0x200, AtomKind::Rmw, Ordering::Relaxed);
        s.atomic(&mut v, 1, 0x200, AtomKind::Load, Ordering::Acquire);
        s.cell_read(&v, 1, 0x100, "cell").unwrap();
    }

    #[test]
    fn unordered_writes_race() {
        let mut s = Shadow::default();
        let v = views(2);
        s.cell_write(&v, 0, 0x100, "cell").unwrap();
        assert!(s.cell_write(&v, 1, 0x100, "cell").is_err());
    }
}
