//! # rvma-core — Remote Virtual Memory Access
//!
//! A complete, thread-safe software implementation of **RVMA** (Grant,
//! Levenhagen, Dosanjh, Widener — Sandia National Laboratories, 2021):
//! one-sided remote memory access with *receiver-managed* resources and
//! *threshold-based* completion, designed for adaptively-routed (i.e.
//! out-of-order) networks.
//!
//! ## The model
//!
//! * Initiators target a 64-bit **virtual mailbox address** ([`VirtAddr`]) —
//!   never a remote physical address, so no buffer handshake is needed.
//! * Receivers post buffers to a mailbox through a [`Window`]; each buffer
//!   serves one **epoch** and carries a [`Threshold`] (bytes or operations).
//! * The endpoint (the "NIC", [`RvmaEndpoint`]) steers each arriving
//!   fragment through a single-lookup table ([`lut::Lut`]), writes the
//!   payload at its offset, counts it, and — when the threshold is reached —
//!   performs the single **completing write** to that buffer's cache-line
//!   aligned [`NotificationSlot`], rotates the mailbox to the next posted
//!   buffer, and retires the completed one for [`Window::rewind`].
//! * Because placement uses offsets and completion uses counts, **any
//!   arrival order yields the same completed buffer** — the property that
//!   lets RVMA run at full speed on adaptively-routed networks where RDMA
//!   needs a trailing send/recv fence.
//!
//! ## Quickstart
//!
//! ```
//! use rvma_core::{
//!     LoopbackNetwork, DeliveryOrder, NodeAddr, VirtAddr, Threshold,
//! };
//!
//! // An adaptively-routed (out-of-order) in-process network.
//! let net = LoopbackNetwork::with_options(512, DeliveryOrder::OutOfOrder { seed: 7 });
//! let server = net.add_endpoint(NodeAddr::node(0));
//! let client = net.initiator(NodeAddr::node(1));
//!
//! // Receiver: one mailbox, one 4 KiB buffer, complete after 4096 bytes.
//! let win = server.init_window(VirtAddr::new(0x1000), Threshold::bytes(4096))?;
//! let mut done = win.post_buffer(vec![0u8; 4096])?;
//!
//! // Sender: no handshake — just put. Fragments are delivered out of order.
//! client.put(NodeAddr::node(0), VirtAddr::new(0x1000), &vec![0xAB; 4096])?;
//!
//! // Receiver: the completion pointer has been written.
//! let buf = done.poll().expect("epoch complete");
//! assert!(buf.data().iter().all(|&b| b == 0xAB));
//! # Ok::<(), rvma_core::RvmaError>(())
//! ```
//!
//! The [`api`] module additionally mirrors the paper's exact
//! `RVMA_*` call names for side-by-side reading with the specification.

pub mod addr;
pub mod api;
pub mod buffer;
#[cfg(feature = "check")]
pub mod check;
pub mod cq;
pub(crate) mod csync;
pub mod endpoint;
pub mod error;
pub mod lut;
pub mod mailbox;
pub mod matching;
pub mod mpix;
pub mod notify;
pub mod pool;
pub mod retry;
pub mod ring;
pub mod shm;
pub mod telemetry;
pub mod transport;
pub mod transport_lossy;
pub mod transport_shm;
pub mod transport_threaded;
pub mod window;

pub use addr::{NodeAddr, VirtAddr};
pub use buffer::{CompletedBuffer, EpochType, Threshold};
pub use bytes::Bytes;
pub use cq::{CompletionQueue, CqCompletion, CqStats};
pub use endpoint::{
    DeliverResult, EndpointConfig, Fragment, RvmaEndpoint, StatsSnapshot, DEFAULT_EAGER_THRESHOLD,
    DEFAULT_SHM_BULK_BYTES, DEFAULT_SHM_REQ_SLOTS, DEFAULT_SHM_RSP_SLOTS, DEFAULT_WIRE_IDLE_SPINS,
    DEFAULT_WIRE_IDLE_YIELDS,
};
pub use error::{NackReason, Result, RvmaError};
pub use lut::LUT_SHARDS;
pub use mailbox::{EpochProgress, Mailbox, MailboxMode, DEFAULT_RETAIN_EPOCHS};
pub use matching::{MatchEntry, MatchList, MatchStats, ANY_SOURCE};
pub use mpix::MpixWindow;
pub use notify::{
    wait_all, wait_any, wait_any_timeout, AsyncNotifyStats, Notification, NotificationSlot,
    NotifyFuture,
};
pub use pool::{BufferPool, PayloadPool, PoolStats};
pub use retry::{
    DedupWindow, FaultInjector, FaultStats, PutReport, ReliableInitiator, RetryConfig,
    DEFAULT_DEDUP_WINDOW, DEFAULT_RETRY_BUDGET,
};
pub use ring::{PushError, RingQueue, RingStats, RingStatsSnapshot, DEFAULT_WIRE_QUEUE_CAP};
pub use shm::{shm_supported, ShmSegment};
pub use telemetry::{Event, EventKind, Histogram, Span, Telemetry, TelemetrySnapshot};
pub use transport::{DeliveryOrder, Initiator, LoopbackNetwork, PutResult, Transport, DEFAULT_MTU};
pub use transport_lossy::{
    FaultModel, InlineChannel, LossyInitiator, LossyNetwork, TransmitOutcome,
};
pub use transport_shm::{shm_pair, BulkExtent, BulkStats, ShmClient, ShmServer};
pub use transport_threaded::{
    AsyncInitiator, AsyncNetwork, PutBatch, PutDelivery, PutFuture, RouteStats,
    DEFAULT_DOORBELL_FRAGS,
};
pub use window::{EpochOutcome, Window};
