//! Status and error types for RVMA operations.
//!
//! The paper's API returns an `RVMA_Status`; we model the failure half of
//! that as [`RvmaError`] and use `Result<T, RvmaError>` idiomatically. NACK
//! behaviour (Sec. III-C: operations on a closed mailbox "are automatically
//! discarded and *may* result in a NACK notification to the initiator;
//! NACKs may be disabled to handle DoS attacks") is captured by
//! [`NackReason`] plus the endpoint's NACK policy.

use crate::addr::VirtAddr;
use std::fmt;

/// Why a target endpoint refused (and discarded) an incoming operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NackReason {
    /// The targeted mailbox exists but its window has been closed.
    WindowClosed,
    /// No mailbox is registered at the targeted virtual address (and no
    /// catch-all mailbox is configured).
    NoSuchMailbox,
    /// The mailbox exists but has no posted buffer to receive into.
    NoBufferPosted,
    /// The operation's `offset + len` exceeds the active buffer's extent.
    OutOfBounds,
}

impl fmt::Display for NackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NackReason::WindowClosed => "window closed",
            NackReason::NoSuchMailbox => "no such mailbox",
            NackReason::NoBufferPosted => "no buffer posted",
            NackReason::OutOfBounds => "write out of buffer bounds",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the RVMA API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvmaError {
    /// A mailbox is already registered at this virtual address.
    MailboxExists(VirtAddr),
    /// No mailbox is registered at this virtual address.
    UnknownMailbox(VirtAddr),
    /// The window handle refers to a mailbox that was closed.
    WindowClosed(VirtAddr),
    /// The target refused the operation; carries the NACK reason. Only
    /// reported when the target has NACKs enabled — with NACKs disabled the
    /// operation is silently discarded and the initiator sees `Ok`.
    Nacked(NackReason),
    /// A posted buffer is smaller than the window's byte-count threshold,
    /// so the epoch could never complete.
    BufferTooSmall {
        /// Bytes the buffer provides.
        buffer: usize,
        /// Bytes the epoch threshold demands.
        threshold: u64,
    },
    /// `epoch_threshold` must be positive.
    ZeroThreshold,
    /// An empty buffer cannot be posted.
    EmptyBuffer,
    /// Rewind asked for an epoch older than the retired-buffer ring retains.
    EpochNotRetained {
        /// The epoch requested.
        requested: u64,
        /// The oldest epoch still held.
        oldest_retained: Option<u64>,
    },
    /// The destination node is not reachable through the transport.
    UnknownDestination,
    /// The LUT is full (NIC lookup capacity exhausted).
    LutFull,
    /// The operation is not valid for the mailbox's mode (e.g. an offset
    /// put into a receiver-managed stream mailbox).
    WrongMode,
    /// The reliable-delivery layer exhausted its retry budget before every
    /// fragment of the operation was acknowledged (e.g. the destination
    /// endpoint crashed or the loss rate exceeds what the budget covers).
    RetryExhausted {
        /// Retransmission rounds attempted.
        attempts: u32,
        /// Fragments acknowledged before giving up.
        acked: u64,
        /// Total fragments the operation comprises.
        total: u64,
    },
    /// A transport backend failed at the OS boundary: the shared-memory
    /// segment could not be created/mapped, the peer process died, or the
    /// platform lacks the required primitives. Carries a human-readable
    /// description of what went wrong.
    TransportFailed(String),
}

impl fmt::Display for RvmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvmaError::MailboxExists(va) => write!(f, "mailbox already registered at {va}"),
            RvmaError::UnknownMailbox(va) => write!(f, "no mailbox at {va}"),
            RvmaError::WindowClosed(va) => write!(f, "window at {va} is closed"),
            RvmaError::Nacked(r) => write!(f, "target NACKed operation: {r}"),
            RvmaError::BufferTooSmall { buffer, threshold } => write!(
                f,
                "posted buffer ({buffer} B) smaller than byte threshold ({threshold} B)"
            ),
            RvmaError::ZeroThreshold => f.write_str("epoch threshold must be positive"),
            RvmaError::EmptyBuffer => f.write_str("cannot post an empty buffer"),
            RvmaError::EpochNotRetained {
                requested,
                oldest_retained,
            } => match oldest_retained {
                Some(o) => write!(f, "epoch {requested} not retained (oldest is {o})"),
                None => write!(f, "epoch {requested} not retained (no retired buffers)"),
            },
            RvmaError::UnknownDestination => f.write_str("destination endpoint not reachable"),
            RvmaError::LutFull => f.write_str("NIC lookup table is full"),
            RvmaError::WrongMode => f.write_str("operation invalid for this mailbox mode"),
            RvmaError::RetryExhausted {
                attempts,
                acked,
                total,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempts ({acked}/{total} fragments acked)"
            ),
            RvmaError::TransportFailed(why) => write!(f, "transport failed: {why}"),
        }
    }
}

impl std::error::Error for RvmaError {}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, RvmaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_informative() {
        let e = RvmaError::Nacked(NackReason::WindowClosed);
        assert_eq!(e.to_string(), "target NACKed operation: window closed");
        let e = RvmaError::BufferTooSmall {
            buffer: 10,
            threshold: 64,
        };
        assert!(e.to_string().contains("10 B"));
        assert!(e.to_string().contains("64 B"));
        let e = RvmaError::EpochNotRetained {
            requested: 3,
            oldest_retained: Some(5),
        };
        assert!(e.to_string().contains("oldest is 5"));
        let e = RvmaError::EpochNotRetained {
            requested: 3,
            oldest_retained: None,
        };
        assert!(e.to_string().contains("no retired buffers"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RvmaError::ZeroThreshold);
    }

    #[test]
    fn nack_reasons_display() {
        assert_eq!(NackReason::NoSuchMailbox.to_string(), "no such mailbox");
        assert_eq!(NackReason::NoBufferPosted.to_string(), "no buffer posted");
        assert_eq!(
            NackReason::OutOfBounds.to_string(),
            "write out of buffer bounds"
        );
    }
}
