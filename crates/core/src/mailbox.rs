//! Mailboxes: buckets of receiver-posted buffers with threshold completion.
//!
//! An RVMA virtual address names a mailbox; the mailbox owns a FIFO queue of
//! posted buffers. Incoming operations land in the *head* (active) buffer
//! only. The NIC counts bytes or operations against the active buffer's
//! threshold; on reaching it the buffer is completed — notification written,
//! epoch advanced, queue rotated to the next posted buffer — and retired
//! into a bounded ring that backs the paper's hardware rewind (Sec. IV-F).
//!
//! Two placement modes exist (paper Sec. IV-B):
//!
//! * **Receiver-Steered** (the paper's HPC focus): every operation carries an
//!   offset into the active buffer, so packets may land in any order —
//!   this is what frees RVMA from byte-level network ordering.
//! * **Receiver-Managed** (the sockets-like mode): the receiver assigns
//!   placement, appending arrivals at a cursor like a stream socket.
//!
//! # Two-phase delivery
//!
//! Delivery is split so the payload copy — the expensive part of the
//! datapath — happens **outside** the mailbox's lock:
//!
//! 1. `Mailbox::deliver_begin` (under the lock): validate, reserve the
//!    destination range `[place_at, end)`, bump the byte/op counters, and
//!    record an in-flight writer.
//! 2. The caller drops the lock and copies the payload through the returned
//!    `WriteReservation` — concurrent fragments to *disjoint* ranges of
//!    the same mailbox copy fully in parallel.
//! 3. `Mailbox::deliver_finish` (under the lock): retire the reservation;
//!    if the threshold was reached, the **last** in-flight writer completes
//!    the epoch, so a completed buffer is never published while bytes are
//!    still landing in it.
//!
//! A fragment whose range overlaps an in-flight reservation reports
//! `BeginOutcome::Contended`; the caller drops the lock, yields, and
//! retries (overlapping concurrent writes are already "not recommended"
//! usage — the retry only serializes them instead of racing).
//! Epoch progress is mirrored into an [`EpochProgress`] that can be read
//! lock-free while deliveries are in flight.

use crate::addr::VirtAddr;
use crate::buffer::{CompletedBuffer, EpochType, PostedBuffer};
use crate::error::{NackReason, Result, RvmaError};
use crate::retry::DedupWindow;
use crate::telemetry::{self, EventKind, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Placement mode of a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxMode {
    /// Operations carry explicit offsets into the active buffer
    /// (out-of-order safe; the paper's primary mode).
    Steered,
    /// The receiver appends arrivals contiguously at a cursor
    /// (sockets-like; requires per-flow ordered delivery).
    Managed,
}

/// Default number of retired (completed) buffers retained per mailbox for
/// rewind. The paper leaves this a design parameter of the NIC's hardware
/// list; 4 epochs of history is enough for "rollback to the last completed
/// timestep" and keeps memory bounded.
pub const DEFAULT_RETAIN_EPOCHS: usize = 4;

/// Key identifying an in-flight multi-fragment operation at the target, so
/// op-counted thresholds count *operations* (not packets) even when a put
/// was fragmented and its packets arrive out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpKey {
    /// Initiator-unique operation id.
    pub op_id: u64,
    /// Initiator node id (op ids are only unique per initiator).
    pub initiator: u64,
}

/// Outcome of delivering one fragment to a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Fragment written; epoch still in progress.
    Accepted,
    /// Fragment written and it completed the active epoch.
    Completed,
    /// Fragment already accepted earlier (per the mailbox's dedup window);
    /// dropped without touching the buffer or the threshold counters.
    Duplicate,
    /// Fragment discarded; carries the reason a NACK would report.
    Discarded(NackReason),
}

/// Result of `Mailbox::deliver_begin`.
pub(crate) enum BeginOutcome {
    /// A destination range was reserved: copy the payload through the
    /// reservation *without* holding the mailbox lock, then call
    /// `Mailbox::deliver_finish` under the lock.
    Reserved(WriteReservation),
    /// Delivery resolved entirely under the lock (discard, or a zero-length
    /// fragment that needed no copy).
    Done(DeliveryOutcome),
    /// The fragment's range overlaps an in-flight reservation. Drop the
    /// lock, yield, and retry `deliver_begin`.
    Contended,
}

/// A reserved destination range in a mailbox's active buffer.
///
/// The pointed-to range stays valid until `Mailbox::deliver_finish` is
/// called with this reservation: while any writer is in flight the mailbox
/// neither completes nor frees its active buffer (close parks it in a
/// draining slot instead).
pub(crate) struct WriteReservation {
    ptr: *mut u8,
    len: usize,
    start: usize,
}

impl WriteReservation {
    /// Copy `data` into the reserved range.
    ///
    /// # Safety
    ///
    /// Call at most once, with `data.len()` equal to the reserved length,
    /// between the `deliver_begin` that produced this reservation and the
    /// matching `deliver_finish`. The mailbox guarantees no other writer
    /// holds an overlapping reservation and no reader observes the range
    /// until `deliver_finish` retires it.
    pub(crate) unsafe fn fill(&self, data: &[u8]) {
        debug_assert_eq!(data.len(), self.len);
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr, self.len) };
    }
}

// The reservation is only ever used by the thread that called
// `deliver_begin`, but endpoints are free to hand it across threads; the
// range it points into is pinned by the mailbox's writer accounting.
unsafe impl Send for WriteReservation {}

/// Lock-free observable progress of a mailbox's current epoch.
///
/// Updated by the delivery path while it holds the mailbox lock; readable
/// (e.g. from a polling application thread) without taking any lock. This
/// is the software analogue of the NIC's memory-mapped counter pair.
#[derive(Debug, Default)]
pub struct EpochProgress {
    bytes: AtomicU64,
    ops: AtomicU64,
    epoch: AtomicU64,
}

impl EpochProgress {
    /// Bytes landed in the active buffer so far this epoch.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// Operations landed against the active buffer so far this epoch.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// Number of completed epochs (== index of the current epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// A mailbox: the target-side state behind one RVMA virtual address.
#[derive(Debug)]
pub struct Mailbox {
    vaddr: VirtAddr,
    mode: MailboxMode,
    /// Head is the active buffer; the rest are queued for future epochs.
    queue: VecDeque<PostedBuffer>,
    /// Epoch counters, shared with lock-free readers via [`EpochProgress`].
    progress: Arc<EpochProgress>,
    /// Per-op received-byte progress for multi-fragment ops (op counting).
    op_progress: HashMap<OpKey, u64>,
    /// Retired buffers, oldest first, bounded by `retain`.
    retired: VecDeque<CompletedBuffer>,
    retain: usize,
    closed: bool,
    /// Stream cursor for `Managed` mode.
    cursor: usize,
    /// Writers that called `deliver_begin` but not yet `deliver_finish`.
    writers: usize,
    /// Reserved `[start, end)` ranges of those writers.
    inflight: Vec<(usize, usize)>,
    /// Threshold was reached (or `inc_epoch` requested) while writers were
    /// still copying; the last `deliver_finish` performs the completion.
    pending_completion: bool,
    /// Active buffer parked by `close()` while writers were still copying
    /// into it; dropped when the last writer finishes.
    draining: Option<PostedBuffer>,
    /// Receiver-side duplicate suppression (the reliability layer's dedup
    /// window), `None` when disabled. Deliberately *not* cleared on epoch
    /// rotation: a replayed final fragment of epoch N must be recognized
    /// after the rotation it triggered, not counted into epoch N + 1.
    dedup: Option<DedupWindow>,
    /// The owning endpoint's `epochs_completed` counter, bumped *before*
    /// the completing write so a waiter woken by the completion pointer
    /// always observes the epoch already counted. `None` for standalone
    /// mailboxes (tests).
    completions: Option<Arc<AtomicU64>>,
    /// Op-level event recorder: `complete_active` stamps
    /// `EpochComplete` just before the completing write. `None` unless
    /// the owning endpoint enabled telemetry.
    telemetry: Option<Arc<Telemetry>>,
}

impl Mailbox {
    /// A new, open mailbox with no buffers posted and dedup disabled.
    pub fn new(vaddr: VirtAddr, mode: MailboxMode, retain: usize) -> Self {
        Self::with_dedup(vaddr, mode, retain, 0)
    }

    /// A new, open mailbox with a duplicate-suppression window remembering
    /// up to `dedup_window` operations (0 disables dedup, preserving the
    /// unprotected lossy-boundary semantics).
    pub fn with_dedup(
        vaddr: VirtAddr,
        mode: MailboxMode,
        retain: usize,
        dedup_window: usize,
    ) -> Self {
        Mailbox {
            vaddr,
            mode,
            queue: VecDeque::new(),
            progress: Arc::new(EpochProgress::default()),
            op_progress: HashMap::new(),
            retired: VecDeque::new(),
            retain,
            closed: false,
            cursor: 0,
            writers: 0,
            inflight: Vec::new(),
            pending_completion: false,
            draining: None,
            dedup: (dedup_window > 0).then(|| DedupWindow::new(dedup_window)),
            completions: None,
            telemetry: None,
        }
    }

    /// Count every epoch completion into `counter` (the endpoint's
    /// `epochs_completed`). The increment is sequenced *before* the
    /// completing write, so it is visible to any thread the completion
    /// wakes — `wait()` returning implies the counter includes this epoch.
    pub(crate) fn count_completions_in(&mut self, counter: Arc<AtomicU64>) {
        self.completions = Some(counter);
    }

    /// Stamp this mailbox's epoch completions into `telemetry` (the
    /// endpoint's shared recorder).
    pub(crate) fn trace_into(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The mailbox's virtual address.
    pub fn vaddr(&self) -> VirtAddr {
        self.vaddr
    }

    /// The mailbox's placement mode.
    pub fn mode(&self) -> MailboxMode {
        self.mode
    }

    /// Current epoch (number of completed epochs so far).
    pub fn epoch(&self) -> u64 {
        self.progress.epoch()
    }

    /// Number of buffers posted and not yet completed (including active).
    pub fn posted_buffers(&self) -> usize {
        self.queue.len()
    }

    /// True once the mailbox has been closed (`RVMA_Close_Win`).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes landed in the active buffer so far this epoch.
    pub fn bytes_this_epoch(&self) -> u64 {
        self.progress.bytes()
    }

    /// Operations landed against the active buffer so far this epoch.
    pub fn ops_this_epoch(&self) -> u64 {
        self.progress.ops()
    }

    /// A handle to the epoch counters, readable without the mailbox lock.
    pub fn progress_handle(&self) -> Arc<EpochProgress> {
        self.progress.clone()
    }

    /// Post a buffer (paper: `RVMA_Post_buffer`). Appends to the bucket;
    /// becomes active when all earlier buffers have completed.
    pub(crate) fn post(&mut self, buf: PostedBuffer) -> Result<()> {
        if self.closed {
            return Err(RvmaError::WindowClosed(self.vaddr));
        }
        if buf.data.is_empty() {
            return Err(RvmaError::EmptyBuffer);
        }
        buf.threshold.validate(buf.data.len())?;
        self.queue.push_back(buf);
        Ok(())
    }

    /// Phase 1 of delivery (paper Fig. 3 steps 2–4 minus the payload
    /// write): translate the placement, validate bounds, reserve the
    /// destination range, and bump the threshold counters — all under the
    /// caller's mailbox lock. The payload copy itself is the caller's,
    /// performed lock-free through the returned reservation.
    pub(crate) fn deliver_begin(
        &mut self,
        op_key: OpKey,
        op_total_len: u64,
        offset: usize,
        data_len: usize,
    ) -> BeginOutcome {
        if self.closed {
            return BeginOutcome::Done(DeliveryOutcome::Discarded(NackReason::WindowClosed));
        }
        // Dedup before any buffer-state check: a retransmitted copy of a
        // fragment whose epoch already completed (and left no buffer
        // posted) must report Duplicate, not a spurious NACK.
        if let Some(d) = &self.dedup {
            if d.is_duplicate(op_key, offset) {
                return BeginOutcome::Done(DeliveryOutcome::Duplicate);
            }
        }
        let (buf_len, threshold) = match self.queue.front() {
            Some(active) => (active.data.len(), active.threshold),
            None => {
                return BeginOutcome::Done(DeliveryOutcome::Discarded(NackReason::NoBufferPosted))
            }
        };

        // Placement.
        let place_at = match self.mode {
            MailboxMode::Steered => offset,
            MailboxMode::Managed => self.cursor,
        };
        let end = match place_at.checked_add(data_len) {
            Some(e) if e <= buf_len => e,
            _ => return BeginOutcome::Done(DeliveryOutcome::Discarded(NackReason::OutOfBounds)),
        };
        if data_len > 0 && self.inflight.iter().any(|&(s, e)| place_at < e && s < end) {
            return BeginOutcome::Contended;
        }
        if self.mode == MailboxMode::Managed {
            self.cursor = end;
        }
        // Accepted: remember the fragment so a retransmitted copy is
        // suppressed (recorded only now, after validation — a NACKed
        // fragment must stay retryable).
        if let Some(d) = &mut self.dedup {
            d.record(op_key, offset);
        }

        // Counting. (In Managed mode the cursor reservation above already
        // made concurrent ranges disjoint, so counting here is exact.)
        self.progress
            .bytes
            .fetch_add(data_len as u64, Ordering::AcqRel);
        if data_len as u64 >= op_total_len {
            // Single-fragment op: count immediately, no tracking entry.
            self.progress.ops.fetch_add(1, Ordering::AcqRel);
        } else {
            let got = self.op_progress.entry(op_key).or_insert(0);
            *got += data_len as u64;
            if *got >= op_total_len {
                self.op_progress.remove(&op_key);
                self.progress.ops.fetch_add(1, Ordering::AcqRel);
            }
        }

        // Threshold check. Completion is deferred to the last in-flight
        // writer so the buffer is never published mid-copy.
        let reached = match threshold.ty {
            EpochType::Bytes => self.progress.bytes() >= threshold.count,
            EpochType::Ops => self.progress.ops() >= threshold.count,
        };
        if reached {
            self.pending_completion = true;
        }

        if data_len == 0 {
            // Nothing to copy; resolve in place.
            return BeginOutcome::Done(if self.try_complete() {
                DeliveryOutcome::Completed
            } else {
                DeliveryOutcome::Accepted
            });
        }

        self.writers += 1;
        self.inflight.push((place_at, end));
        let active = self.queue.front_mut().expect("active checked above");
        // Pointer into the active buffer's heap allocation; stable while
        // writers > 0 (see WriteReservation docs).
        let ptr = unsafe { active.data.as_mut_ptr().add(place_at) };
        BeginOutcome::Reserved(WriteReservation {
            ptr,
            len: data_len,
            start: place_at,
        })
    }

    /// Deliver a run of fragments begin-to-finish in one call, bypassing
    /// the two-phase reservation machinery. Only valid when no reservation
    /// is outstanding (`writers == 0`): under that condition the caller's
    /// exclusive borrow is the only writer, so every copy goes straight
    /// into the active buffer through safe code — no writer count, no
    /// in-flight range tracking, no raw-pointer reservations, and no
    /// overlap scans (the in-flight list is necessarily empty). This is
    /// the batched datapath's fast path: the wire-worker pool shards by
    /// mailbox, so a worker delivering a batch under the mailbox lock
    /// meets this condition on every fragment.
    ///
    /// Being the sole writer also makes the shared progress counters
    /// single-writer for the duration, so the run accumulates byte/op
    /// counts in locals and publishes them as **one atomic add per counter
    /// per run** instead of per fragment — except at an epoch boundary,
    /// where the pending deltas are published first (`complete_active`
    /// computes the buffer's valid length from the shared counters).
    /// Readers of the counters ([`EpochProgress`] pacing) see bounded
    /// staleness: at most one run (≤ one batch chunk) of puts.
    ///
    /// Each fragment's outcome is reported through `on_outcome` together
    /// with its payload length. Returns `false` without consuming anything
    /// when a reservation *is* outstanding; the caller must fall back to
    /// `deliver_begin`/`deliver_finish` (which also handles contention
    /// against that reservation's range).
    pub(crate) fn deliver_run_exclusive<'f>(
        &mut self,
        frags: impl Iterator<Item = (OpKey, u64, usize, &'f [u8])>,
        on_outcome: &mut dyn FnMut(DeliveryOutcome, usize),
    ) -> bool {
        if self.writers != 0 {
            return false;
        }
        debug_assert!(self.inflight.is_empty(), "inflight range without writer");
        let mut bytes_local = self.progress.bytes();
        let mut ops_local = self.progress.ops();
        let (mut bytes_delta, mut ops_delta) = (0u64, 0u64);
        // Taken out of `self` for the loop so recording can happen while
        // the active buffer is mutably borrowed; restored on every exit.
        let mut dedup = self.dedup.take();
        for (op_key, op_total_len, offset, data) in frags {
            if self.closed {
                on_outcome(
                    DeliveryOutcome::Discarded(NackReason::WindowClosed),
                    data.len(),
                );
                continue;
            }
            if let Some(d) = &dedup {
                if d.is_duplicate(op_key, offset) {
                    on_outcome(DeliveryOutcome::Duplicate, data.len());
                    continue;
                }
            }
            // One front_mut lookup per fragment; `cursor` is a disjoint
            // field, so updating it while the active borrow lives is fine.
            let Some(active) = self.queue.front_mut() else {
                on_outcome(
                    DeliveryOutcome::Discarded(NackReason::NoBufferPosted),
                    data.len(),
                );
                continue;
            };
            let threshold = active.threshold;
            let place_at = match self.mode {
                MailboxMode::Steered => offset,
                MailboxMode::Managed => self.cursor,
            };
            let end = match place_at.checked_add(data.len()) {
                Some(e) if e <= active.data.len() => e,
                _ => {
                    on_outcome(
                        DeliveryOutcome::Discarded(NackReason::OutOfBounds),
                        data.len(),
                    );
                    continue;
                }
            };
            if self.mode == MailboxMode::Managed {
                self.cursor = end;
            }
            if let Some(d) = &mut dedup {
                d.record(op_key, offset);
            }
            if !data.is_empty() {
                active.data[place_at..end].copy_from_slice(data);
            }
            bytes_local += data.len() as u64;
            bytes_delta += data.len() as u64;
            if data.len() as u64 >= op_total_len {
                ops_local += 1;
                ops_delta += 1;
            } else {
                // Multi-fragment op: rare on this path. Publish pending
                // deltas so the shared per-op bookkeeping stays exact.
                self.flush_progress(&mut bytes_delta, &mut ops_delta);
                let got = self.op_progress.entry(op_key).or_insert(0);
                *got += data.len() as u64;
                if *got >= op_total_len {
                    self.op_progress.remove(&op_key);
                    self.progress.ops.fetch_add(1, Ordering::AcqRel);
                    ops_local += 1;
                }
            }
            let reached = match threshold.ty {
                EpochType::Bytes => bytes_local >= threshold.count,
                EpochType::Ops => ops_local >= threshold.count,
            };
            if reached {
                self.flush_progress(&mut bytes_delta, &mut ops_delta);
                self.pending_completion = true;
                if self.try_complete() {
                    on_outcome(DeliveryOutcome::Completed, data.len());
                    // Completion reset the counters for the next epoch.
                    bytes_local = self.progress.bytes();
                    ops_local = self.progress.ops();
                    continue;
                }
            }
            on_outcome(DeliveryOutcome::Accepted, data.len());
        }
        self.dedup = dedup;
        self.flush_progress(&mut bytes_delta, &mut ops_delta);
        true
    }

    /// Publish locally accumulated progress deltas (see
    /// [`deliver_run_exclusive`](Self::deliver_run_exclusive)).
    fn flush_progress(&self, bytes_delta: &mut u64, ops_delta: &mut u64) {
        if *bytes_delta > 0 {
            self.progress
                .bytes
                .fetch_add(std::mem::take(bytes_delta), Ordering::AcqRel);
        }
        if *ops_delta > 0 {
            self.progress
                .ops
                .fetch_add(std::mem::take(ops_delta), Ordering::AcqRel);
        }
    }

    /// Phase 2 of delivery: retire the reservation and, if this was the last
    /// in-flight writer of an epoch whose threshold has been reached,
    /// complete the epoch (paper Fig. 3 step 5).
    pub(crate) fn deliver_finish(&mut self, reservation: WriteReservation) -> DeliveryOutcome {
        debug_assert!(self.writers > 0, "finish without begin");
        self.writers -= 1;
        if let Some(pos) = self
            .inflight
            .iter()
            .position(|&(s, _)| s == reservation.start)
        {
            self.inflight.swap_remove(pos);
        }
        if self.closed {
            // Raced with close(): the copy landed in a buffer nobody will
            // see. Drop the parked allocation once the last writer is out.
            if self.writers == 0 {
                self.draining = None;
            }
            return DeliveryOutcome::Accepted;
        }
        if self.try_complete() {
            DeliveryOutcome::Completed
        } else {
            DeliveryOutcome::Accepted
        }
    }

    /// Deliver one fragment of an operation, begin-to-finish, under the
    /// caller's exclusive borrow. This is the single-threaded reference
    /// semantics for the two-phase pair; the production datapath
    /// (`RvmaEndpoint::deliver`) always goes through begin/finish so the
    /// copy can run outside the mailbox lock.
    ///
    /// `op_key` identifies the whole operation, `op_total_len` its full byte
    /// count (fragments of one op share both), `offset` is the byte offset
    /// into the active buffer (ignored — receiver-assigned — in `Managed`
    /// mode), and `data` the fragment payload.
    #[cfg(test)]
    pub(crate) fn deliver(
        &mut self,
        op_key: OpKey,
        op_total_len: u64,
        offset: usize,
        data: &[u8],
    ) -> DeliveryOutcome {
        match self.deliver_begin(op_key, op_total_len, offset, data.len()) {
            BeginOutcome::Done(outcome) => outcome,
            BeginOutcome::Reserved(reservation) => {
                // Exclusive borrow: no other writer can exist, so the copy
                // is race-free even without dropping any lock.
                unsafe { reservation.fill(data) };
                self.deliver_finish(reservation)
            }
            BeginOutcome::Contended => {
                unreachable!("overlap with in-flight writer under exclusive borrow")
            }
        }
    }

    /// Complete the active buffer *now*, regardless of threshold (paper:
    /// `RVMA_Win_inc_epoch` — hand a partial buffer to software, for
    /// streams, unknown-size messages, or error recovery). If fragment
    /// copies are in flight, completion happens when the last one finishes.
    pub(crate) fn inc_epoch(&mut self) -> Result<()> {
        if self.closed {
            return Err(RvmaError::WindowClosed(self.vaddr));
        }
        if self.queue.is_empty() {
            return Err(RvmaError::Nacked(NackReason::NoBufferPosted));
        }
        self.pending_completion = true;
        self.try_complete();
        Ok(())
    }

    /// Complete the active epoch iff completion is pending and no writer is
    /// mid-copy. Returns true when the completion happened here.
    fn try_complete(&mut self) -> bool {
        if !self.pending_completion || self.writers > 0 || self.closed {
            return false;
        }
        self.pending_completion = false;
        self.complete_active();
        true
    }

    fn complete_active(&mut self) {
        debug_assert!(
            self.inflight.is_empty(),
            "completing with writers in flight"
        );
        let buf = self.queue.pop_front().expect("active buffer present");
        // Valid length: in steered mode the highest byte written is unknown
        // without per-byte tracking; the hardware writes the *count* of bytes
        // received, which equals the extent for the recommended
        // non-overlapping usage. We mirror that: valid_len = bytes counted,
        // clamped to the buffer.
        let valid = (self.progress.bytes() as usize).min(buf.data.len());
        let epoch = self.progress.epoch();
        let completed = CompletedBuffer::with_pool(buf.data, valid, epoch, self.vaddr, buf.pool);

        // Retire for rewind, evicting the oldest beyond capacity.
        self.retired.push_back(completed.clone());
        while self.retired.len() > self.retain {
            self.retired.pop_front();
        }

        // Publish the epoch into the endpoint's counter first: the
        // completing write below releases the payload to waiters (who may
        // be spinning on the completion pointer and read stats the very
        // next instruction), so the count must already be in place.
        if let Some(counter) = &self.completions {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        telemetry::record(
            &self.telemetry,
            EventKind::EpochComplete,
            self.vaddr.raw(),
            epoch,
            valid as u64,
        );

        // The completing write to the completion pointer.
        buf.notify.complete(completed);
        // Async-armed slots (async posts, CQ attachments) stamp the wake
        // here rather than inside `complete`: the armed flag is fixed at
        // post time and this runs under the mailbox lock, so the event's
        // seq order is stable for deterministic replay.
        if buf.notify.is_async_armed() {
            telemetry::record(
                &self.telemetry,
                EventKind::NotifyWake,
                self.vaddr.raw(),
                epoch,
                valid as u64,
            );
        }

        self.progress.epoch.fetch_add(1, Ordering::AcqRel);
        self.progress.bytes.store(0, Ordering::Release);
        self.progress.ops.store(0, Ordering::Release);
        self.op_progress.clear();
        self.cursor = 0;
    }

    /// Close the mailbox (paper: `RVMA_Close_Win`). Subsequent operations
    /// are discarded (optionally NACKed by the endpoint). Queued, never-
    /// activated buffers are returned to the caller — as is the active
    /// buffer, unless fragment copies are still in flight into it, in which
    /// case it is parked and dropped when the last copy finishes.
    pub(crate) fn close(&mut self) -> Vec<Vec<u8>> {
        self.closed = true;
        self.op_progress.clear();
        self.pending_completion = false;
        if self.writers > 0 {
            self.draining = self.queue.pop_front();
        }
        self.queue.drain(..).map(|b| b.data).collect()
    }

    /// The retired buffer completed exactly `back` epochs before the current
    /// epoch: `back = 1` is the most recently completed buffer. This is the
    /// hardware rewind command of paper Sec. IV-F.
    pub fn rewind(&self, back: u64) -> Result<CompletedBuffer> {
        if back == 0 || back > self.retired.len() as u64 {
            return Err(RvmaError::EpochNotRetained {
                requested: self.epoch().saturating_sub(back),
                oldest_retained: self.retired.front().map(CompletedBuffer::epoch),
            });
        }
        let idx = self.retired.len() - back as usize;
        Ok(self.retired[idx].clone())
    }

    /// The retired buffer for an absolute epoch number, if still retained.
    pub fn retired_epoch(&self, epoch: u64) -> Result<CompletedBuffer> {
        self.retired
            .iter()
            .find(|b| b.epoch() == epoch)
            .cloned()
            .ok_or(RvmaError::EpochNotRetained {
                requested: epoch,
                oldest_retained: self.retired.front().map(CompletedBuffer::epoch),
            })
    }

    /// Number of retired buffers currently retained.
    pub fn retained_count(&self) -> usize {
        self.retired.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::notify::{Notification, NotificationSlot};

    fn mb(mode: MailboxMode) -> Mailbox {
        Mailbox::new(VirtAddr::new(0xAB), mode, DEFAULT_RETAIN_EPOCHS)
    }

    fn post(m: &mut Mailbox, len: usize, t: Threshold) -> Notification {
        let slot = NotificationSlot::new();
        m.post(PostedBuffer::new(vec![0; len], t, slot.clone()))
            .expect("post ok");
        Notification::new(slot)
    }

    fn key(op: u64) -> OpKey {
        OpKey {
            op_id: op,
            initiator: 1,
        }
    }

    #[test]
    fn byte_threshold_completes_exactly() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(m.deliver(key(1), 4, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert!(n.poll().is_none());
        assert_eq!(m.deliver(key(2), 4, 4, &[2; 4]), DeliveryOutcome::Completed);
        let buf = n.poll().expect("completed");
        assert_eq!(buf.data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(buf.epoch(), 0);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn out_of_order_fragments_complete_identically() {
        // The core adaptive-routing claim: any arrival order, same result.
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(m.deliver(key(1), 8, 4, &[2; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 8, 0, &[1; 4]), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn op_threshold_counts_ops_not_fragments() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 64, Threshold::ops(2));
        // Op 1 in three fragments of a 12-byte op.
        assert_eq!(m.deliver(key(1), 12, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 12, 4, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 12, 8, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 1);
        assert!(n.poll().is_none());
        // Op 2 single-fragment completes the epoch.
        assert_eq!(
            m.deliver(key(2), 4, 12, &[2; 4]),
            DeliveryOutcome::Completed
        );
        assert!(n.poll().is_some());
    }

    #[test]
    fn multi_fragment_ops_interleaved_from_two_initiators() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 64, Threshold::ops(2));
        let a = OpKey {
            op_id: 7,
            initiator: 1,
        };
        let b = OpKey {
            op_id: 7, // same op id, different initiator: must not collide
            initiator: 2,
        };
        assert_eq!(m.deliver(a, 8, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(b, 8, 8, &[2; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 0);
        assert_eq!(m.deliver(a, 8, 4, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 1);
        assert_eq!(m.deliver(b, 8, 12, &[2; 4]), DeliveryOutcome::Completed);
        assert_eq!(
            n.poll().unwrap().data()[..16],
            [1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2][..]
        );
    }

    #[test]
    fn epoch_rotation_is_fifo() {
        let mut m = mb(MailboxMode::Steered);
        let mut n1 = post(&mut m, 4, Threshold::bytes(4));
        let mut n2 = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(m.posted_buffers(), 2);
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n1.poll().unwrap().data(), &[1; 4]);
        assert_eq!(n2.poll().unwrap().data(), &[2; 4]);
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.posted_buffers(), 0);
    }

    #[test]
    fn no_buffer_posted_discards() {
        let mut m = mb(MailboxMode::Steered);
        assert_eq!(
            m.deliver(key(1), 4, 0, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::NoBufferPosted)
        );
    }

    #[test]
    fn out_of_bounds_discards_without_counting() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(
            m.deliver(key(1), 16, 4, &[0; 16]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
        assert_eq!(m.bytes_this_epoch(), 0);
        // Offset overflow must not panic.
        assert_eq!(
            m.deliver(key(2), 4, usize::MAX, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
        assert!(n.poll().is_none());
    }

    #[test]
    fn closed_mailbox_discards_and_returns_queued() {
        let mut m = mb(MailboxMode::Steered);
        let _n1 = post(&mut m, 4, Threshold::bytes(4));
        let _n2 = post(&mut m, 6, Threshold::bytes(6));
        let returned = m.close();
        assert_eq!(returned.len(), 2);
        assert_eq!(returned[1].len(), 6);
        assert!(m.is_closed());
        assert_eq!(
            m.deliver(key(1), 4, 0, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::WindowClosed)
        );
        // Posting after close fails.
        let slot = NotificationSlot::new();
        assert_eq!(
            m.post(PostedBuffer::new(vec![0; 4], Threshold::bytes(4), slot)),
            Err(RvmaError::WindowClosed(VirtAddr::new(0xAB)))
        );
    }

    #[test]
    fn inc_epoch_hands_over_partial_buffer() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 16, Threshold::bytes(16));
        m.deliver(key(1), 4, 0, &[9; 4]);
        m.inc_epoch().expect("active buffer exists");
        let buf = n.poll().expect("partial completion delivered");
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.data(), &[9; 4]);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn inc_epoch_without_buffer_errors() {
        let mut m = mb(MailboxMode::Steered);
        assert!(m.inc_epoch().is_err());
    }

    #[test]
    fn rewind_returns_previous_epochs() {
        let mut m = mb(MailboxMode::Steered);
        for _ in 0..3 {
            let _ = post(&mut m, 4, Threshold::bytes(4));
        }
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        m.deliver(key(3), 4, 0, &[3; 4]);
        assert_eq!(m.epoch(), 3);
        assert_eq!(m.rewind(1).unwrap().data(), &[3; 4]);
        assert_eq!(m.rewind(2).unwrap().data(), &[2; 4]);
        assert_eq!(m.rewind(3).unwrap().data(), &[1; 4]);
        assert!(m.rewind(4).is_err());
        assert!(m.rewind(0).is_err());
        assert_eq!(m.retired_epoch(1).unwrap().data(), &[2; 4]);
        assert!(m.retired_epoch(99).is_err());
    }

    #[test]
    fn retired_ring_is_bounded() {
        let mut m = Mailbox::new(VirtAddr::new(1), MailboxMode::Steered, 2);
        for i in 0..5u8 {
            let _n = post(&mut m, 4, Threshold::bytes(4));
            m.deliver(key(i as u64), 4, 0, &[i; 4]);
        }
        assert_eq!(m.retained_count(), 2);
        assert_eq!(m.rewind(1).unwrap().data(), &[4; 4]);
        assert_eq!(m.rewind(2).unwrap().data(), &[3; 4]);
        let err = m.rewind(3).unwrap_err();
        assert_eq!(
            err,
            RvmaError::EpochNotRetained {
                requested: 2,
                oldest_retained: Some(3),
            }
        );
    }

    #[test]
    fn managed_mode_appends_at_cursor() {
        let mut m = mb(MailboxMode::Managed);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        // Offsets are ignored; placement is receiver-assigned.
        m.deliver(key(1), 4, 999, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn managed_cursor_resets_per_epoch() {
        let mut m = mb(MailboxMode::Managed);
        let mut n1 = post(&mut m, 4, Threshold::bytes(4));
        let mut n2 = post(&mut m, 4, Threshold::bytes(4));
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n1.poll().unwrap().data(), &[1; 4]);
        assert_eq!(n2.poll().unwrap().data(), &[2; 4]);
    }

    #[test]
    fn managed_overrun_discards() {
        let mut m = mb(MailboxMode::Managed);
        let _n = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(
            m.deliver(key(1), 8, 0, &[1; 8]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
    }

    #[test]
    fn valid_len_clamped_on_overlapping_writes() {
        // Overlapping writes are allowed (not recommended); the byte counter
        // can exceed the buffer extent, but valid_len must clamp.
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 4, Threshold::ops(2));
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]); // overwrite; bytes counter now 8 > 4
        let buf = n.poll().unwrap();
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.data(), &[2; 4]);
    }

    #[test]
    fn dedup_suppresses_replayed_fragments() {
        let mut m = Mailbox::with_dedup(VirtAddr::new(0xAB), MailboxMode::Steered, 4, 8);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(m.deliver(key(1), 8, 0, &[1; 4]), DeliveryOutcome::Accepted);
        // Replay of an accepted fragment: no counting, no completion.
        assert_eq!(m.deliver(key(1), 8, 0, &[1; 4]), DeliveryOutcome::Duplicate);
        assert_eq!(m.bytes_this_epoch(), 4);
        assert!(n.poll().is_none());
        assert_eq!(m.deliver(key(1), 8, 4, &[2; 4]), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn dedup_survives_epoch_rotation() {
        // A duplicated *final* fragment must not complete the next epoch
        // early — the exact failure mode the lossy boundary documents.
        let mut m = Mailbox::with_dedup(VirtAddr::new(0xAB), MailboxMode::Steered, 4, 8);
        let _n1 = post(&mut m, 4, Threshold::bytes(4));
        let mut n2 = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(m.deliver(key(1), 4, 0, &[1; 4]), DeliveryOutcome::Completed);
        // The replayed completer arrives after rotation: suppressed, and
        // epoch 1's buffer is untouched.
        assert_eq!(m.deliver(key(1), 4, 0, &[1; 4]), DeliveryOutcome::Duplicate);
        assert_eq!(m.bytes_this_epoch(), 0);
        assert!(n2.poll().is_none());
        assert_eq!(m.deliver(key(2), 4, 0, &[2; 4]), DeliveryOutcome::Completed);
        assert_eq!(n2.poll().unwrap().data(), &[2; 4]);
    }

    #[test]
    fn dedup_does_not_shield_nacked_fragments() {
        // A fragment discarded for lack of a buffer is NOT recorded: when
        // the receiver finally posts, a retransmit must be deliverable.
        let mut m = Mailbox::with_dedup(VirtAddr::new(0xAB), MailboxMode::Steered, 4, 8);
        assert_eq!(
            m.deliver(key(1), 4, 0, &[7; 4]),
            DeliveryOutcome::Discarded(NackReason::NoBufferPosted)
        );
        let mut n = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(m.deliver(key(1), 4, 0, &[7; 4]), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[7; 4]);
    }

    #[test]
    fn dedup_applies_on_exclusive_run_path() {
        let mut m = Mailbox::with_dedup(VirtAddr::new(0xAB), MailboxMode::Steered, 4, 8);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        let frags: Vec<(OpKey, u64, usize, &[u8])> = vec![
            (key(1), 8, 0, &[1; 4]),
            (key(1), 8, 0, &[1; 4]), // duplicated in the same run
            (key(1), 8, 4, &[2; 4]),
        ];
        let mut outcomes = Vec::new();
        assert!(m.deliver_run_exclusive(frags.into_iter(), &mut |o, _| outcomes.push(o)));
        assert_eq!(
            outcomes,
            vec![
                DeliveryOutcome::Accepted,
                DeliveryOutcome::Duplicate,
                DeliveryOutcome::Completed,
            ]
        );
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn posting_invalid_buffers_fails() {
        let mut m = mb(MailboxMode::Steered);
        let slot = NotificationSlot::new();
        assert_eq!(
            m.post(PostedBuffer::new(vec![], Threshold::bytes(1), slot.clone())),
            Err(RvmaError::EmptyBuffer)
        );
        assert_eq!(
            m.post(PostedBuffer::new(vec![0; 4], Threshold::bytes(8), slot)),
            Err(RvmaError::BufferTooSmall {
                buffer: 4,
                threshold: 8
            })
        );
    }

    #[test]
    fn two_phase_defers_completion_to_last_writer() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        let r1 = match m.deliver_begin(key(1), 8, 0, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("expected reservation"),
        };
        let r2 = match m.deliver_begin(key(1), 8, 4, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("expected reservation for disjoint range"),
        };
        // Threshold already reached by the counters, but nothing may
        // complete while copies are in flight.
        assert_eq!(m.bytes_this_epoch(), 8);
        assert!(n.poll().is_none());
        unsafe { r1.fill(&[1; 4]) };
        assert_eq!(m.deliver_finish(r1), DeliveryOutcome::Accepted);
        assert!(n.poll().is_none(), "one writer still in flight");
        unsafe { r2.fill(&[2; 4]) };
        assert_eq!(m.deliver_finish(r2), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn overlapping_reservation_reports_contended() {
        let mut m = mb(MailboxMode::Steered);
        let _n = post(&mut m, 16, Threshold::bytes(16));
        let r1 = match m.deliver_begin(key(1), 16, 4, 8) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("expected reservation"),
        };
        assert!(matches!(
            m.deliver_begin(key(2), 16, 8, 4),
            BeginOutcome::Contended
        ));
        // Disjoint ranges on either side are fine.
        let r3 = match m.deliver_begin(key(3), 16, 0, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("disjoint range must not contend"),
        };
        unsafe { r1.fill(&[1; 8]) };
        m.deliver_finish(r1);
        // The overlapping range is free now.
        let r2 = match m.deliver_begin(key(2), 16, 8, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("range free after finish"),
        };
        unsafe { r2.fill(&[2; 4]) };
        m.deliver_finish(r2);
        unsafe { r3.fill(&[3; 4]) };
        m.deliver_finish(r3);
    }

    #[test]
    fn close_with_writer_in_flight_parks_active_buffer() {
        let mut m = mb(MailboxMode::Steered);
        let mut n1 = post(&mut m, 8, Threshold::bytes(8));
        let _n2 = post(&mut m, 6, Threshold::bytes(6));
        let r = match m.deliver_begin(key(1), 4, 0, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("expected reservation"),
        };
        let returned = m.close();
        // Only the queued (never-activated) buffer can be returned; the
        // active one still has a copy in flight.
        assert_eq!(returned.len(), 1);
        assert_eq!(returned[0].len(), 6);
        assert!(m.is_closed());
        // The in-flight copy may still land (into the parked buffer)...
        unsafe { r.fill(&[9; 4]) };
        assert_eq!(m.deliver_finish(r), DeliveryOutcome::Accepted);
        // ...but no completion is ever published for it.
        assert!(n1.poll().is_none());
        assert_eq!(m.posted_buffers(), 0);
    }

    #[test]
    fn inc_epoch_waits_for_inflight_writer() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 16, Threshold::bytes(16));
        let r = match m.deliver_begin(key(1), 4, 0, 4) {
            BeginOutcome::Reserved(r) => r,
            _ => panic!("expected reservation"),
        };
        m.inc_epoch().expect("active buffer exists");
        assert!(
            n.poll().is_none(),
            "completion deferred past in-flight copy"
        );
        unsafe { r.fill(&[7; 4]) };
        assert_eq!(m.deliver_finish(r), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[7; 4]);
    }

    #[test]
    fn progress_handle_tracks_epochs_lock_free() {
        let mut m = mb(MailboxMode::Steered);
        let progress = m.progress_handle();
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        m.deliver(key(1), 4, 0, &[1; 4]);
        assert_eq!(progress.bytes(), 4);
        assert_eq!(progress.epoch(), 0);
        m.deliver(key(2), 4, 4, &[2; 4]);
        assert_eq!(progress.bytes(), 0, "counters reset at completion");
        assert_eq!(progress.epoch(), 1);
        assert!(n.poll().is_some());
    }
}
