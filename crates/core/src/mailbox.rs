//! Mailboxes: buckets of receiver-posted buffers with threshold completion.
//!
//! An RVMA virtual address names a mailbox; the mailbox owns a FIFO queue of
//! posted buffers. Incoming operations land in the *head* (active) buffer
//! only. The NIC counts bytes or operations against the active buffer's
//! threshold; on reaching it the buffer is completed — notification written,
//! epoch advanced, queue rotated to the next posted buffer — and retired
//! into a bounded ring that backs the paper's hardware rewind (Sec. IV-F).
//!
//! Two placement modes exist (paper Sec. IV-B):
//!
//! * **Receiver-Steered** (the paper's HPC focus): every operation carries an
//!   offset into the active buffer, so packets may land in any order —
//!   this is what frees RVMA from byte-level network ordering.
//! * **Receiver-Managed** (the sockets-like mode): the receiver assigns
//!   placement, appending arrivals at a cursor like a stream socket.

use crate::addr::VirtAddr;
use crate::buffer::{CompletedBuffer, EpochType, PostedBuffer};
use crate::error::{NackReason, Result, RvmaError};
use std::collections::{HashMap, VecDeque};

/// Placement mode of a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxMode {
    /// Operations carry explicit offsets into the active buffer
    /// (out-of-order safe; the paper's primary mode).
    Steered,
    /// The receiver appends arrivals contiguously at a cursor
    /// (sockets-like; requires per-flow ordered delivery).
    Managed,
}

/// Default number of retired (completed) buffers retained per mailbox for
/// rewind. The paper leaves this a design parameter of the NIC's hardware
/// list; 4 epochs of history is enough for "rollback to the last completed
/// timestep" and keeps memory bounded.
pub const DEFAULT_RETAIN_EPOCHS: usize = 4;

/// Key identifying an in-flight multi-fragment operation at the target, so
/// op-counted thresholds count *operations* (not packets) even when a put
/// was fragmented and its packets arrive out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpKey {
    /// Initiator-unique operation id.
    pub op_id: u64,
    /// Initiator node id (op ids are only unique per initiator).
    pub initiator: u64,
}

/// Outcome of delivering one fragment to a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Fragment written; epoch still in progress.
    Accepted,
    /// Fragment written and it completed the active epoch.
    Completed,
    /// Fragment discarded; carries the reason a NACK would report.
    Discarded(NackReason),
}

/// A mailbox: the target-side state behind one RVMA virtual address.
#[derive(Debug)]
pub struct Mailbox {
    vaddr: VirtAddr,
    mode: MailboxMode,
    /// Head is the active buffer; the rest are queued for future epochs.
    queue: VecDeque<PostedBuffer>,
    /// Bytes written into the active buffer this epoch.
    bytes_this_epoch: u64,
    /// Operations completed against the active buffer this epoch.
    ops_this_epoch: u64,
    /// Per-op received-byte progress for multi-fragment ops (op counting).
    op_progress: HashMap<OpKey, u64>,
    /// Number of completed epochs == index of the current epoch.
    epoch: u64,
    /// Retired buffers, oldest first, bounded by `retain`.
    retired: VecDeque<CompletedBuffer>,
    retain: usize,
    closed: bool,
    /// Stream cursor for `Managed` mode.
    cursor: usize,
}

impl Mailbox {
    /// A new, open mailbox with no buffers posted.
    pub fn new(vaddr: VirtAddr, mode: MailboxMode, retain: usize) -> Self {
        Mailbox {
            vaddr,
            mode,
            queue: VecDeque::new(),
            bytes_this_epoch: 0,
            ops_this_epoch: 0,
            op_progress: HashMap::new(),
            epoch: 0,
            retired: VecDeque::new(),
            retain,
            closed: false,
            cursor: 0,
        }
    }

    /// The mailbox's virtual address.
    pub fn vaddr(&self) -> VirtAddr {
        self.vaddr
    }

    /// The mailbox's placement mode.
    pub fn mode(&self) -> MailboxMode {
        self.mode
    }

    /// Current epoch (number of completed epochs so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of buffers posted and not yet completed (including active).
    pub fn posted_buffers(&self) -> usize {
        self.queue.len()
    }

    /// True once the mailbox has been closed (`RVMA_Close_Win`).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes landed in the active buffer so far this epoch.
    pub fn bytes_this_epoch(&self) -> u64 {
        self.bytes_this_epoch
    }

    /// Operations landed against the active buffer so far this epoch.
    pub fn ops_this_epoch(&self) -> u64 {
        self.ops_this_epoch
    }

    /// Post a buffer (paper: `RVMA_Post_buffer`). Appends to the bucket;
    /// becomes active when all earlier buffers have completed.
    pub(crate) fn post(&mut self, buf: PostedBuffer) -> Result<()> {
        if self.closed {
            return Err(RvmaError::WindowClosed(self.vaddr));
        }
        if buf.data.is_empty() {
            return Err(RvmaError::EmptyBuffer);
        }
        buf.threshold.validate(buf.data.len())?;
        self.queue.push_back(buf);
        Ok(())
    }

    /// Deliver one fragment of an operation.
    ///
    /// `op_key` identifies the whole operation, `op_total_len` its full byte
    /// count (fragments of one op share both), `offset` is the byte offset
    /// into the active buffer (ignored — receiver-assigned — in `Managed`
    /// mode), and `data` the fragment payload.
    ///
    /// This is the NIC datapath of paper Fig. 3 steps 2–5: translate, write
    /// payload, bump counters, check threshold, maybe complete.
    pub(crate) fn deliver(
        &mut self,
        op_key: OpKey,
        op_total_len: u64,
        offset: usize,
        data: &[u8],
    ) -> DeliveryOutcome {
        if self.closed {
            return DeliveryOutcome::Discarded(NackReason::WindowClosed);
        }
        let Some(active) = self.queue.front_mut() else {
            return DeliveryOutcome::Discarded(NackReason::NoBufferPosted);
        };

        // Placement.
        let place_at = match self.mode {
            MailboxMode::Steered => offset,
            MailboxMode::Managed => self.cursor,
        };
        let end = match place_at.checked_add(data.len()) {
            Some(e) if e <= active.data.len() => e,
            _ => return DeliveryOutcome::Discarded(NackReason::OutOfBounds),
        };
        active.data[place_at..end].copy_from_slice(data);
        if self.mode == MailboxMode::Managed {
            self.cursor = end;
        }

        // Counting.
        self.bytes_this_epoch += data.len() as u64;
        if data.len() as u64 >= op_total_len {
            // Single-fragment op: count immediately, no tracking entry.
            self.ops_this_epoch += 1;
        } else {
            let got = self.op_progress.entry(op_key).or_insert(0);
            *got += data.len() as u64;
            if *got >= op_total_len {
                self.op_progress.remove(&op_key);
                self.ops_this_epoch += 1;
            }
        }

        // Threshold check.
        let t = active.threshold;
        let reached = match t.ty {
            EpochType::Bytes => self.bytes_this_epoch >= t.count,
            EpochType::Ops => self.ops_this_epoch >= t.count,
        };
        if reached {
            self.complete_active();
            DeliveryOutcome::Completed
        } else {
            DeliveryOutcome::Accepted
        }
    }

    /// Complete the active buffer *now*, regardless of threshold (paper:
    /// `RVMA_Win_inc_epoch` — hand a partial buffer to software, for
    /// streams, unknown-size messages, or error recovery).
    pub(crate) fn inc_epoch(&mut self) -> Result<()> {
        if self.closed {
            return Err(RvmaError::WindowClosed(self.vaddr));
        }
        if self.queue.is_empty() {
            return Err(RvmaError::Nacked(NackReason::NoBufferPosted));
        }
        self.complete_active();
        Ok(())
    }

    fn complete_active(&mut self) {
        let buf = self.queue.pop_front().expect("active buffer present");
        // Valid length: in steered mode the highest byte written is unknown
        // without per-byte tracking; the hardware writes the *count* of bytes
        // received, which equals the extent for the recommended
        // non-overlapping usage. We mirror that: valid_len = bytes counted,
        // clamped to the buffer.
        let valid = (self.bytes_this_epoch as usize).min(buf.data.len());
        let completed = CompletedBuffer::new(buf.data, valid, self.epoch, self.vaddr);

        // Retire for rewind, evicting the oldest beyond capacity.
        self.retired.push_back(completed.clone());
        while self.retired.len() > self.retain {
            self.retired.pop_front();
        }

        // The completing write to the completion pointer.
        buf.notify.complete(completed);

        self.epoch += 1;
        self.bytes_this_epoch = 0;
        self.ops_this_epoch = 0;
        self.op_progress.clear();
        self.cursor = 0;
    }

    /// Close the mailbox (paper: `RVMA_Close_Win`). Subsequent operations
    /// are discarded (optionally NACKed by the endpoint). Queued, never-
    /// activated buffers are returned to the caller.
    pub(crate) fn close(&mut self) -> Vec<Vec<u8>> {
        self.closed = true;
        self.op_progress.clear();
        self.queue.drain(..).map(|b| b.data).collect()
    }

    /// The retired buffer completed exactly `back` epochs before the current
    /// epoch: `back = 1` is the most recently completed buffer. This is the
    /// hardware rewind command of paper Sec. IV-F.
    pub fn rewind(&self, back: u64) -> Result<CompletedBuffer> {
        if back == 0 || back > self.retired.len() as u64 {
            return Err(RvmaError::EpochNotRetained {
                requested: self.epoch.saturating_sub(back),
                oldest_retained: self.retired.front().map(CompletedBuffer::epoch),
            });
        }
        let idx = self.retired.len() - back as usize;
        Ok(self.retired[idx].clone())
    }

    /// The retired buffer for an absolute epoch number, if still retained.
    pub fn retired_epoch(&self, epoch: u64) -> Result<CompletedBuffer> {
        self.retired
            .iter()
            .find(|b| b.epoch() == epoch)
            .cloned()
            .ok_or(RvmaError::EpochNotRetained {
                requested: epoch,
                oldest_retained: self.retired.front().map(CompletedBuffer::epoch),
            })
    }

    /// Number of retired buffers currently retained.
    pub fn retained_count(&self) -> usize {
        self.retired.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::notify::{Notification, NotificationSlot};

    fn mb(mode: MailboxMode) -> Mailbox {
        Mailbox::new(VirtAddr::new(0xAB), mode, DEFAULT_RETAIN_EPOCHS)
    }

    fn post(m: &mut Mailbox, len: usize, t: Threshold) -> Notification {
        let slot = NotificationSlot::new();
        m.post(PostedBuffer::new(vec![0; len], t, slot.clone()))
            .expect("post ok");
        Notification::new(slot)
    }

    fn key(op: u64) -> OpKey {
        OpKey {
            op_id: op,
            initiator: 1,
        }
    }

    #[test]
    fn byte_threshold_completes_exactly() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(m.deliver(key(1), 4, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert!(n.poll().is_none());
        assert_eq!(m.deliver(key(2), 4, 4, &[2; 4]), DeliveryOutcome::Completed);
        let buf = n.poll().expect("completed");
        assert_eq!(buf.data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(buf.epoch(), 0);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn out_of_order_fragments_complete_identically() {
        // The core adaptive-routing claim: any arrival order, same result.
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(m.deliver(key(1), 8, 4, &[2; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 8, 0, &[1; 4]), DeliveryOutcome::Completed);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn op_threshold_counts_ops_not_fragments() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 64, Threshold::ops(2));
        // Op 1 in three fragments of a 12-byte op.
        assert_eq!(m.deliver(key(1), 12, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 12, 4, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(key(1), 12, 8, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 1);
        assert!(n.poll().is_none());
        // Op 2 single-fragment completes the epoch.
        assert_eq!(
            m.deliver(key(2), 4, 12, &[2; 4]),
            DeliveryOutcome::Completed
        );
        assert!(n.poll().is_some());
    }

    #[test]
    fn multi_fragment_ops_interleaved_from_two_initiators() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 64, Threshold::ops(2));
        let a = OpKey {
            op_id: 7,
            initiator: 1,
        };
        let b = OpKey {
            op_id: 7, // same op id, different initiator: must not collide
            initiator: 2,
        };
        assert_eq!(m.deliver(a, 8, 0, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.deliver(b, 8, 8, &[2; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 0);
        assert_eq!(m.deliver(a, 8, 4, &[1; 4]), DeliveryOutcome::Accepted);
        assert_eq!(m.ops_this_epoch(), 1);
        assert_eq!(m.deliver(b, 8, 12, &[2; 4]), DeliveryOutcome::Completed);
        assert_eq!(
            n.poll().unwrap().data()[..16],
            [1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2][..]
        );
    }

    #[test]
    fn epoch_rotation_is_fifo() {
        let mut m = mb(MailboxMode::Steered);
        let mut n1 = post(&mut m, 4, Threshold::bytes(4));
        let mut n2 = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(m.posted_buffers(), 2);
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n1.poll().unwrap().data(), &[1; 4]);
        assert_eq!(n2.poll().unwrap().data(), &[2; 4]);
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.posted_buffers(), 0);
    }

    #[test]
    fn no_buffer_posted_discards() {
        let mut m = mb(MailboxMode::Steered);
        assert_eq!(
            m.deliver(key(1), 4, 0, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::NoBufferPosted)
        );
    }

    #[test]
    fn out_of_bounds_discards_without_counting() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        assert_eq!(
            m.deliver(key(1), 16, 4, &[0; 16]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
        assert_eq!(m.bytes_this_epoch(), 0);
        // Offset overflow must not panic.
        assert_eq!(
            m.deliver(key(2), 4, usize::MAX, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
        assert!(n.poll().is_none());
    }

    #[test]
    fn closed_mailbox_discards_and_returns_queued() {
        let mut m = mb(MailboxMode::Steered);
        let _n1 = post(&mut m, 4, Threshold::bytes(4));
        let _n2 = post(&mut m, 6, Threshold::bytes(6));
        let returned = m.close();
        assert_eq!(returned.len(), 2);
        assert_eq!(returned[1].len(), 6);
        assert!(m.is_closed());
        assert_eq!(
            m.deliver(key(1), 4, 0, &[0; 4]),
            DeliveryOutcome::Discarded(NackReason::WindowClosed)
        );
        // Posting after close fails.
        let slot = NotificationSlot::new();
        assert_eq!(
            m.post(PostedBuffer::new(vec![0; 4], Threshold::bytes(4), slot)),
            Err(RvmaError::WindowClosed(VirtAddr::new(0xAB)))
        );
    }

    #[test]
    fn inc_epoch_hands_over_partial_buffer() {
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 16, Threshold::bytes(16));
        m.deliver(key(1), 4, 0, &[9; 4]);
        m.inc_epoch().expect("active buffer exists");
        let buf = n.poll().expect("partial completion delivered");
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.data(), &[9; 4]);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn inc_epoch_without_buffer_errors() {
        let mut m = mb(MailboxMode::Steered);
        assert!(m.inc_epoch().is_err());
    }

    #[test]
    fn rewind_returns_previous_epochs() {
        let mut m = mb(MailboxMode::Steered);
        for _ in 0..3 {
            let _ = post(&mut m, 4, Threshold::bytes(4));
        }
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        m.deliver(key(3), 4, 0, &[3; 4]);
        assert_eq!(m.epoch(), 3);
        assert_eq!(m.rewind(1).unwrap().data(), &[3; 4]);
        assert_eq!(m.rewind(2).unwrap().data(), &[2; 4]);
        assert_eq!(m.rewind(3).unwrap().data(), &[1; 4]);
        assert!(m.rewind(4).is_err());
        assert!(m.rewind(0).is_err());
        assert_eq!(m.retired_epoch(1).unwrap().data(), &[2; 4]);
        assert!(m.retired_epoch(99).is_err());
    }

    #[test]
    fn retired_ring_is_bounded() {
        let mut m = Mailbox::new(VirtAddr::new(1), MailboxMode::Steered, 2);
        for i in 0..5u8 {
            let _n = post(&mut m, 4, Threshold::bytes(4));
            m.deliver(key(i as u64), 4, 0, &[i; 4]);
        }
        assert_eq!(m.retained_count(), 2);
        assert_eq!(m.rewind(1).unwrap().data(), &[4; 4]);
        assert_eq!(m.rewind(2).unwrap().data(), &[3; 4]);
        let err = m.rewind(3).unwrap_err();
        assert_eq!(
            err,
            RvmaError::EpochNotRetained {
                requested: 2,
                oldest_retained: Some(3),
            }
        );
    }

    #[test]
    fn managed_mode_appends_at_cursor() {
        let mut m = mb(MailboxMode::Managed);
        let mut n = post(&mut m, 8, Threshold::bytes(8));
        // Offsets are ignored; placement is receiver-assigned.
        m.deliver(key(1), 4, 999, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn managed_cursor_resets_per_epoch() {
        let mut m = mb(MailboxMode::Managed);
        let mut n1 = post(&mut m, 4, Threshold::bytes(4));
        let mut n2 = post(&mut m, 4, Threshold::bytes(4));
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]);
        assert_eq!(n1.poll().unwrap().data(), &[1; 4]);
        assert_eq!(n2.poll().unwrap().data(), &[2; 4]);
    }

    #[test]
    fn managed_overrun_discards() {
        let mut m = mb(MailboxMode::Managed);
        let _n = post(&mut m, 4, Threshold::bytes(4));
        assert_eq!(
            m.deliver(key(1), 8, 0, &[1; 8]),
            DeliveryOutcome::Discarded(NackReason::OutOfBounds)
        );
    }

    #[test]
    fn valid_len_clamped_on_overlapping_writes() {
        // Overlapping writes are allowed (not recommended); the byte counter
        // can exceed the buffer extent, but valid_len must clamp.
        let mut m = mb(MailboxMode::Steered);
        let mut n = post(&mut m, 4, Threshold::ops(2));
        m.deliver(key(1), 4, 0, &[1; 4]);
        m.deliver(key(2), 4, 0, &[2; 4]); // overwrite; bytes counter now 8 > 4
        let buf = n.poll().unwrap();
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.data(), &[2; 4]);
    }

    #[test]
    fn posting_invalid_buffers_fails() {
        let mut m = mb(MailboxMode::Steered);
        let slot = NotificationSlot::new();
        assert_eq!(
            m.post(PostedBuffer::new(vec![], Threshold::bytes(1), slot.clone())),
            Err(RvmaError::EmptyBuffer)
        );
        assert_eq!(
            m.post(PostedBuffer::new(vec![0; 4], Threshold::bytes(8), slot)),
            Err(RvmaError::BufferTooSmall {
                buffer: 4,
                threshold: 8
            })
        );
    }
}
