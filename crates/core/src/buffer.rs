//! Buffers, thresholds, and epoch types.
//!
//! A receiver posts buffers to a mailbox; each buffer is consumed by exactly
//! one *epoch* of communication. The epoch's **threshold** — a count of
//! bytes or of operations, fixed when the window is created (paper
//! Sec. III-C, `epoch_threshold` + `epoch_type`) — tells the NIC when the
//! buffer is full, at which point the buffer is completed, the completion
//! pointer is written, and the mailbox rotates to the next posted buffer.

use crate::addr::VirtAddr;
use crate::error::{Result, RvmaError};
use crate::notify::NotificationSlot;
use crate::pool::BufferPool;
use std::fmt;
use std::sync::Arc;

/// How an epoch threshold is interpreted (paper: `EPOCH_BYTES` / `EPOCH_OPS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpochType {
    /// The threshold counts bytes written into the active buffer.
    Bytes,
    /// The threshold counts completed operations on the active buffer.
    Ops,
}

/// An epoch completion threshold: type + count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threshold {
    /// Interpretation of `count`.
    pub ty: EpochType,
    /// Number of bytes or operations required to complete an epoch.
    pub count: u64,
}

impl Threshold {
    /// Epoch completes after `count` bytes have been written.
    pub const fn bytes(count: u64) -> Self {
        Threshold {
            ty: EpochType::Bytes,
            count,
        }
    }

    /// Epoch completes after `count` operations have landed.
    pub const fn ops(count: u64) -> Self {
        Threshold {
            ty: EpochType::Ops,
            count,
        }
    }

    /// Validate against a buffer of `buf_len` bytes.
    ///
    /// A zero threshold can never be meaningful, and a byte threshold larger
    /// than the buffer could never be reached (the paper recommends the byte
    /// threshold equal the window size for non-overlapping puts).
    pub fn validate(&self, buf_len: usize) -> Result<()> {
        if self.count == 0 {
            return Err(RvmaError::ZeroThreshold);
        }
        if self.ty == EpochType::Bytes && self.count > buf_len as u64 {
            return Err(RvmaError::BufferTooSmall {
                buffer: buf_len,
                threshold: self.count,
            });
        }
        Ok(())
    }
}

/// A receiver-posted buffer waiting in (or active at the head of) a
/// mailbox's bucket. Internal to the crate; applications hand over a
/// `Vec<u8>` via `Window::post_buffer` and get ownership back through the
/// notification when the epoch completes.
pub(crate) struct PostedBuffer {
    pub(crate) data: Vec<u8>,
    pub(crate) threshold: Threshold,
    pub(crate) notify: Arc<NotificationSlot>,
    /// Pool the allocation returns to when the completed buffer's last
    /// owner drops it (None = caller keeps ownership, the seed behaviour).
    pub(crate) pool: Option<Arc<BufferPool>>,
}

impl PostedBuffer {
    pub(crate) fn new(data: Vec<u8>, threshold: Threshold, notify: Arc<NotificationSlot>) -> Self {
        PostedBuffer {
            data,
            threshold,
            notify,
            pool: None,
        }
    }

    pub(crate) fn pooled(
        data: Vec<u8>,
        threshold: Threshold,
        notify: Arc<NotificationSlot>,
        pool: Arc<BufferPool>,
    ) -> Self {
        PostedBuffer {
            data,
            threshold,
            notify,
            pool: Some(pool),
        }
    }
}

impl fmt::Debug for PostedBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PostedBuffer")
            .field("len", &self.data.len())
            .field("threshold", &self.threshold)
            .finish()
    }
}

/// A buffer whose epoch has completed, as delivered through the completion
/// pointer (and retained in the mailbox's retired ring for rewind).
///
/// The data is shared immutably: the notification holder, the retired ring,
/// and any rewind caller all see the same bytes. This mirrors the paper's
/// fault-tolerance caveat — "the application must not write new data over
/// communication buffers" if rewind is to return pristine contents — by
/// construction rather than convention.
#[derive(Clone)]
pub struct CompletedBuffer {
    inner: Arc<CompletedInner>,
}

struct CompletedInner {
    data: Vec<u8>,
    valid_len: usize,
    epoch: u64,
    vaddr: VirtAddr,
    /// Destination of the allocation when the last owner drops.
    pool: Option<Arc<BufferPool>>,
}

impl Drop for CompletedInner {
    fn drop(&mut self) {
        // Last-owner recycling: by the time the inner drops, the
        // notification holder, the retired ring, and every rewind clone are
        // gone, so nothing can still observe the bytes.
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.data));
        }
    }
}

impl CompletedBuffer {
    #[cfg(test)]
    pub(crate) fn new(data: Vec<u8>, valid_len: usize, epoch: u64, vaddr: VirtAddr) -> Self {
        Self::with_pool(data, valid_len, epoch, vaddr, None)
    }

    pub(crate) fn with_pool(
        data: Vec<u8>,
        valid_len: usize,
        epoch: u64,
        vaddr: VirtAddr,
        pool: Option<Arc<BufferPool>>,
    ) -> Self {
        debug_assert!(valid_len <= data.len());
        CompletedBuffer {
            inner: Arc::new(CompletedInner {
                data,
                valid_len,
                epoch,
                vaddr,
                pool,
            }),
        }
    }

    /// The valid (written) prefix of the buffer — the length the NIC wrote
    /// next to the completion pointer.
    pub fn data(&self) -> &[u8] {
        &self.inner.data[..self.inner.valid_len]
    }

    /// The entire posted buffer, including any tail beyond the valid length.
    pub fn full_buffer(&self) -> &[u8] {
        &self.inner.data
    }

    /// Number of valid bytes (bytes actually written this epoch).
    pub fn len(&self) -> usize {
        self.inner.valid_len
    }

    /// True when no bytes were written (possible via early `inc_epoch`).
    pub fn is_empty(&self) -> bool {
        self.inner.valid_len == 0
    }

    /// The epoch this buffer completed (0 is the first epoch of a mailbox).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The mailbox this buffer was posted to.
    pub fn vaddr(&self) -> VirtAddr {
        self.inner.vaddr
    }

    /// Reclaim the underlying allocation for reuse (e.g. to re-post it).
    /// Succeeds only when this is the last reference — i.e. the retired ring
    /// has dropped it and no other clone exists; otherwise returns `self`.
    /// Reclaiming takes precedence over the buffer's pool, if it has one.
    pub fn try_into_vec(self) -> std::result::Result<Vec<u8>, CompletedBuffer> {
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                inner.pool = None;
                Ok(std::mem::take(&mut inner.data))
            }
            Err(inner) => Err(CompletedBuffer { inner }),
        }
    }
}

impl fmt::Debug for CompletedBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletedBuffer")
            .field("vaddr", &self.inner.vaddr)
            .field("epoch", &self.inner.epoch)
            .field("valid_len", &self.inner.valid_len)
            .field("capacity", &self.inner.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_constructors() {
        assert_eq!(Threshold::bytes(64).ty, EpochType::Bytes);
        assert_eq!(Threshold::ops(4).ty, EpochType::Ops);
        assert_eq!(Threshold::ops(4).count, 4);
    }

    #[test]
    fn threshold_validation() {
        assert_eq!(
            Threshold::bytes(0).validate(10),
            Err(RvmaError::ZeroThreshold)
        );
        assert_eq!(
            Threshold::ops(0).validate(10),
            Err(RvmaError::ZeroThreshold)
        );
        assert_eq!(
            Threshold::bytes(11).validate(10),
            Err(RvmaError::BufferTooSmall {
                buffer: 10,
                threshold: 11
            })
        );
        assert!(Threshold::bytes(10).validate(10).is_ok());
        // Op thresholds are not bounded by buffer size.
        assert!(Threshold::ops(1000).validate(10).is_ok());
    }

    #[test]
    fn completed_buffer_views() {
        let cb = CompletedBuffer::new(vec![1, 2, 3, 4], 3, 7, VirtAddr::new(9));
        assert_eq!(cb.data(), &[1, 2, 3]);
        assert_eq!(cb.full_buffer(), &[1, 2, 3, 4]);
        assert_eq!(cb.len(), 3);
        assert!(!cb.is_empty());
        assert_eq!(cb.epoch(), 7);
        assert_eq!(cb.vaddr(), VirtAddr::new(9));
    }

    #[test]
    fn completed_buffer_empty() {
        let cb = CompletedBuffer::new(vec![0; 8], 0, 0, VirtAddr::new(0));
        assert!(cb.is_empty());
        assert_eq!(cb.data(), &[] as &[u8]);
    }

    #[test]
    fn try_into_vec_requires_sole_ownership() {
        let cb = CompletedBuffer::new(vec![5; 4], 4, 0, VirtAddr::new(1));
        let clone = cb.clone();
        let cb = cb.try_into_vec().unwrap_err();
        drop(clone);
        let v = cb.try_into_vec().unwrap();
        assert_eq!(v, vec![5; 4]);
    }

    #[test]
    fn pooled_buffer_recycles_on_last_drop() {
        let pool = Arc::new(BufferPool::new());
        let cb =
            CompletedBuffer::with_pool(vec![1; 32], 32, 0, VirtAddr::new(1), Some(pool.clone()));
        let clone = cb.clone();
        drop(cb);
        assert_eq!(pool.stats().shelved, 0, "a clone still owns the bytes");
        drop(clone);
        assert_eq!(pool.stats().shelved, 1, "last drop returns the allocation");
        // try_into_vec steals the allocation away from the pool instead.
        let cb = CompletedBuffer::with_pool(vec![2; 8], 8, 0, VirtAddr::new(1), Some(pool.clone()));
        let v = cb.try_into_vec().unwrap();
        assert_eq!(v, vec![2; 8]);
        assert_eq!(pool.stats().shelved, 1);
    }

    #[test]
    fn clones_share_data() {
        let cb = CompletedBuffer::new(vec![9; 16], 16, 2, VirtAddr::new(3));
        let c2 = cb.clone();
        assert_eq!(cb.data().as_ptr(), c2.data().as_ptr());
    }
}
