//! In-process transport: connects endpoints so RVMA is usable for real
//! (multi-threaded) communication, and emulates network properties.
//!
//! [`LoopbackNetwork`] is a registry of [`RvmaEndpoint`]s plus a wire model:
//! puts are fragmented at an MTU and delivered to the target endpoint on the
//! calling thread (the "NIC datapath" runs inline, which is faithful — the
//! target host CPU is never involved). The [`DeliveryOrder`] knob emulates
//! routing:
//!
//! * [`DeliveryOrder::InOrder`] — a statically-routed network: fragments of
//!   a put arrive in transmit order.
//! * [`DeliveryOrder::OutOfOrder`] — an adaptively-routed network: fragment
//!   order is shuffled per-operation with a seeded RNG. RVMA's threshold
//!   completion must (and does) produce identical results either way — the
//!   paper's central correctness claim.
//!
//! No ordering is enforced *across* operations or initiators; concurrent
//! puts from many threads interleave arbitrarily at the target, exercising
//! the endpoint's locking.

use crate::addr::{NodeAddr, VirtAddr};
use crate::buffer::CompletedBuffer;
use crate::endpoint::{DeliverResult, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default MTU: 2 KiB payload per fragment, a typical HPC-network packet
/// payload size.
pub const DEFAULT_MTU: usize = 2048;

/// Fragment delivery order policy — the routing emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOrder {
    /// Static routing: fragments arrive in transmit order.
    InOrder,
    /// Adaptive routing: fragments of each operation are delivered in a
    /// (seeded, reproducible) random order.
    OutOfOrder {
        /// RNG seed; the same seed reproduces the same permutations.
        seed: u64,
    },
}

/// Summary the initiator sees after a put's fragments are all delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutResult {
    /// Fragments the operation was split into.
    pub fragments: usize,
    /// True if any fragment of this put completed a target epoch.
    pub completed_epoch: bool,
}

/// Initiator-side surface every transport backend offers — the contract the
/// cross-transport conformance suite (`tests/transport_conformance.rs`)
/// drives identically over the inline-lossy, threaded, and shared-memory
/// backends.
///
/// The semantics are the asynchronous ones (the lowest common denominator
/// all three backends can honour):
///
/// * [`put_at`](Transport::put_at) may return before delivery; it errors
///   only on *local* conditions (unknown destination, dead peer process).
/// * Target-side refusals surface as **asynchronous NACKs** through
///   [`take_nacks`](Transport::take_nacks) — even on backends that learn
///   of the NACK synchronously.
/// * [`flush`](Transport::flush) is the drain barrier: when it returns,
///   every previously submitted fragment has reached its final disposition
///   (delivered or NACKed) at the target, *including* link-level
///   retransmissions still pending inside the backend — so a subsequent
///   `take_nacks` is complete for everything submitted before the flush.
pub trait Transport: Send + Sync {
    /// Backend name for diagnostics/parametrised assertions.
    fn backend(&self) -> &'static str;

    /// `RVMA_Put` of `data` into the mailbox at `vaddr` on `dest`, writing
    /// at byte `offset` of the active buffer.
    fn put_at(&self, dest: NodeAddr, vaddr: VirtAddr, offset: usize, data: &[u8]) -> Result<()>;

    /// `RVMA_Put` at offset 0.
    fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// `RVMA_Put` of an owned, reference-counted payload.
    ///
    /// Puts larger than the backend's configured
    /// [`eager_threshold`](crate::endpoint::EndpointConfig::eager_threshold)
    /// take the zero-copy lane: fragments are offset/len slices of this
    /// shared handle (or, on the shared-memory backend, the payload rides
    /// a bulk-region extent), so no initiator-side staging copy is made.
    /// Smaller puts keep the eager fragment path, byte-for-byte identical
    /// to [`put_at`](Self::put_at). The default implementation *is* the
    /// eager path — backends without a zero-copy lane stay correct.
    fn put_bytes_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<()> {
        self.put_at(dest, vaddr, offset, &data)
    }

    /// Payload bytes this initiator staged (memcpy'd into a private
    /// buffer, ring slot, or bulk extent) before handing them to the
    /// wire. `staged_bytes + endpoint bytes_copied` over
    /// `bytes_accepted` is the datapath's copies-per-delivered-byte; the
    /// in-process zero-copy lanes contribute 0 here.
    fn staged_bytes(&self) -> u64 {
        0
    }

    /// Block until every previously submitted fragment reached its final
    /// disposition at the target (the quiesce/drain barrier).
    fn flush(&self) -> Result<()>;

    /// Drain the asynchronously collected NACKs observed so far.
    fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)>;
}

/// The in-process network connecting RVMA endpoints.
#[derive(Debug)]
pub struct LoopbackNetwork {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    mtu: usize,
    order: DeliveryOrder,
    rng: Mutex<StdRng>,
}

impl LoopbackNetwork {
    /// An in-order network with the default MTU.
    pub fn new() -> Arc<Self> {
        Self::with_options(DEFAULT_MTU, DeliveryOrder::InOrder)
    }

    /// A network with explicit MTU and delivery-order policy.
    ///
    /// # Panics
    /// Panics if `mtu` is zero.
    pub fn with_options(mtu: usize, order: DeliveryOrder) -> Arc<Self> {
        assert!(mtu > 0, "MTU must be positive");
        let seed = match order {
            DeliveryOrder::OutOfOrder { seed } => seed,
            DeliveryOrder::InOrder => 0,
        };
        Arc::new(LoopbackNetwork {
            endpoints: RwLock::new(HashMap::new()),
            mtu,
            order,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        })
    }

    /// The configured MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// The configured delivery-order policy.
    pub fn order(&self) -> DeliveryOrder {
        self.order
    }

    /// Attach an endpoint. Replaces any previous endpoint at that address.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        self.endpoints.write().insert(endpoint.addr(), endpoint);
    }

    /// Create *and* attach a fresh endpoint at `addr`.
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::new(addr);
        self.register(ep.clone());
        ep
    }

    /// Look up an attached endpoint.
    pub fn endpoint(&self, addr: NodeAddr) -> Option<Arc<RvmaEndpoint>> {
        self.endpoints.read().get(&addr).cloned()
    }

    /// An initiator handle bound to source address `src` (paper: the
    /// initiator-side API). Op ids drawn from it are unique per handle;
    /// use one handle per initiating thread/process.
    pub fn initiator(self: &Arc<Self>, src: NodeAddr) -> Initiator {
        Initiator {
            net: self.clone(),
            src,
            next_op: AtomicU64::new(1),
        }
    }
}

/// Initiator-side handle: issues `put` (paper: `RVMA_Put`) and the `get`
/// extension against remote endpoints.
#[derive(Debug)]
pub struct Initiator {
    net: Arc<LoopbackNetwork>,
    src: NodeAddr,
    next_op: AtomicU64,
}

impl Initiator {
    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.src
    }

    /// `RVMA_Put`: send `data` to mailbox `vaddr` on `dest`, at offset 0 of
    /// the target's active buffer. No handshake, no remote address exchange.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<PutResult> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// `RVMA_Put` with an explicit offset into the target's active buffer
    /// (paper Sec. III-B: offsets assemble one contiguous payload within a
    /// single mailbox's buffer).
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<PutResult> {
        let ep = self
            .net
            .endpoint(dest)
            .ok_or(RvmaError::UnknownDestination)?;
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;

        // Fragment at the MTU (zero-copy slices of the payload).
        let mtu = self.net.mtu;
        let mut frags: Vec<Fragment> = if payload.is_empty() {
            // A zero-byte put is a single empty fragment: it still counts as
            // one operation at the target (op-counted synchronization puts).
            vec![Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: 0,
                offset,
                data: payload.clone(),
            }]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|start| {
                    let end = (start + mtu).min(payload.len());
                    Fragment {
                        initiator: self.src,
                        op_id,
                        dst_vaddr: vaddr,
                        op_total_len: total,
                        offset: offset + start,
                        data: payload.slice(start..end),
                    }
                })
                .collect()
        };

        if let DeliveryOrder::OutOfOrder { .. } = self.net.order {
            frags.shuffle(&mut *self.net.rng.lock());
        }

        let fragments = frags.len();
        let mut completed = false;
        let mut nack: Option<NackReason> = None;
        for f in &frags {
            match ep.deliver(f) {
                DeliverResult::Ok { completed_epoch } => completed |= completed_epoch,
                // The loopback never duplicates, but an endpoint with a
                // dedup window can report one if the application replays
                // an op id; it is an ack, not a failure.
                DeliverResult::Duplicate => {}
                DeliverResult::Nack(r) => nack = nack.or(Some(r)),
                DeliverResult::Dropped(_) => {
                    // NACKs disabled at the target: initiator learns nothing.
                }
            }
        }
        match nack {
            Some(r) => Err(RvmaError::Nacked(r)),
            None => Ok(PutResult {
                fragments,
                completed_epoch: completed,
            }),
        }
    }

    /// The `RVMA_Get`-style read extension: fetch the buffer the target
    /// mailbox completed `back` epochs ago (`back = 1` = most recent).
    /// Reading *completed* epochs (never the in-progress one) keeps gets
    /// race-free without target-side coordination.
    pub fn get_retired(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        back: u64,
    ) -> Result<CompletedBuffer> {
        let ep = self
            .net
            .endpoint(dest)
            .ok_or(RvmaError::UnknownDestination)?;
        let mb = ep.mailbox(vaddr).ok_or(RvmaError::UnknownMailbox(vaddr))?;
        let mb = mb.lock();
        mb.rewind(back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;

    fn net_pair(order: DeliveryOrder) -> (Arc<LoopbackNetwork>, Arc<RvmaEndpoint>, Initiator) {
        let net = LoopbackNetwork::with_options(4, order); // tiny MTU: forces fragmentation
        let target = net.add_endpoint(NodeAddr::node(1));
        let init = net.initiator(NodeAddr::node(2));
        (net, target, init)
    }

    #[test]
    fn put_without_handshake() {
        let (_n, target, init) = net_pair(DeliveryOrder::InOrder);
        let win = target
            .init_window(VirtAddr::new(7), Threshold::bytes(10))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 10]).unwrap();
        let r = init
            .put(
                NodeAddr::node(1),
                VirtAddr::new(7),
                &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            )
            .unwrap();
        assert_eq!(r.fragments, 3); // 4+4+2 bytes
        assert!(r.completed_epoch);
        assert_eq!(
            note.poll().unwrap().data(),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        );
    }

    #[test]
    fn out_of_order_delivery_matches_in_order_result() {
        let payload: Vec<u8> = (0..64).collect();
        let run = |order| {
            let (_n, target, init) = net_pair(order);
            let win = target
                .init_window(VirtAddr::new(7), Threshold::bytes(64))
                .unwrap();
            let mut note = win.post_buffer(vec![0; 64]).unwrap();
            init.put(NodeAddr::node(1), VirtAddr::new(7), &payload)
                .unwrap();
            note.poll().unwrap().data().to_vec()
        };
        assert_eq!(run(DeliveryOrder::InOrder), payload);
        assert_eq!(run(DeliveryOrder::OutOfOrder { seed: 99 }), payload);
    }

    #[test]
    fn ooo_is_reproducible_per_seed() {
        // Same seed must produce the same fragment permutation (verified
        // indirectly: deliver onto an ops-counted window and compare the
        // bytes-in-progress trace via stats).
        let trace = |seed| {
            let (_n, target, init) = net_pair(DeliveryOrder::OutOfOrder { seed });
            let win = target
                .init_window(VirtAddr::new(7), Threshold::bytes(16))
                .unwrap();
            let _note = win.post_buffer(vec![0; 16]).unwrap();
            init.put(
                NodeAddr::node(1),
                VirtAddr::new(7),
                &(0..16).collect::<Vec<u8>>(),
            )
            .unwrap();
            target.stats()
        };
        assert_eq!(trace(5), trace(5));
    }

    #[test]
    fn unknown_destination_errors() {
        let (net, _t, _i) = net_pair(DeliveryOrder::InOrder);
        let init = net.initiator(NodeAddr::node(3));
        assert_eq!(
            init.put(NodeAddr::node(42), VirtAddr::new(1), &[0]),
            Err(RvmaError::UnknownDestination)
        );
    }

    #[test]
    fn nack_propagates_to_initiator() {
        let (_n, _target, init) = net_pair(DeliveryOrder::InOrder);
        let err = init
            .put(NodeAddr::node(1), VirtAddr::new(123), &[0; 4])
            .unwrap_err();
        assert_eq!(err, RvmaError::Nacked(NackReason::NoSuchMailbox));
    }

    #[test]
    fn zero_byte_put_counts_one_op() {
        let (_n, target, init) = net_pair(DeliveryOrder::InOrder);
        let win = target
            .init_window(VirtAddr::new(7), Threshold::ops(1))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 4]).unwrap();
        let r = init.put(NodeAddr::node(1), VirtAddr::new(7), &[]).unwrap();
        assert_eq!(r.fragments, 1);
        assert!(r.completed_epoch);
        assert_eq!(note.poll().unwrap().len(), 0);
    }

    #[test]
    fn offsets_assemble_contiguous_payload() {
        // Paper Sec. III-B: a contiguous 64-byte message = two 32-byte puts
        // to the SAME mailbox with offsets 0 and 32.
        let (_n, target, init) = net_pair(DeliveryOrder::InOrder);
        let win = target
            .init_window(VirtAddr::new(0x11FF0011), Threshold::bytes(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        init.put_at(NodeAddr::node(1), VirtAddr::new(0x11FF0011), 0, &[0xAA; 32])
            .unwrap();
        init.put_at(
            NodeAddr::node(1),
            VirtAddr::new(0x11FF0011),
            32,
            &[0xBB; 32],
        )
        .unwrap();
        let buf = note.poll().unwrap();
        assert_eq!(&buf.data()[..32], &[0xAA; 32]);
        assert_eq!(&buf.data()[32..], &[0xBB; 32]);
    }

    #[test]
    fn distinct_mailboxes_separate_messages() {
        // Paper Sec. III-B: puts to different mailbox addresses land in
        // different buckets, never assembling into one buffer.
        let (_n, target, init) = net_pair(DeliveryOrder::InOrder);
        let w1 = target
            .init_window(VirtAddr::new(0x11FF0011), Threshold::bytes(32))
            .unwrap();
        let w2 = target
            .init_window(VirtAddr::new(0x11FF0031), Threshold::bytes(32))
            .unwrap();
        let mut n1 = w1.post_buffer(vec![0; 32]).unwrap();
        let mut n2 = w2.post_buffer(vec![0; 32]).unwrap();
        init.put(NodeAddr::node(1), VirtAddr::new(0x11FF0011), &[1; 32])
            .unwrap();
        init.put(NodeAddr::node(1), VirtAddr::new(0x11FF0031), &[2; 32])
            .unwrap();
        assert_eq!(n1.poll().unwrap().data(), &[1; 32]);
        assert_eq!(n2.poll().unwrap().data(), &[2; 32]);
    }

    #[test]
    fn get_retired_reads_completed_epochs() {
        let (_n, target, init) = net_pair(DeliveryOrder::InOrder);
        let win = target
            .init_window(VirtAddr::new(7), Threshold::bytes(4))
            .unwrap();
        let _ns = win.post_buffers(vec![vec![0; 4], vec![0; 4]]).unwrap();
        init.put(NodeAddr::node(1), VirtAddr::new(7), &[1; 4])
            .unwrap();
        init.put(NodeAddr::node(1), VirtAddr::new(7), &[2; 4])
            .unwrap();
        let got = init
            .get_retired(NodeAddr::node(1), VirtAddr::new(7), 2)
            .unwrap();
        assert_eq!(got.data(), &[1; 4]);
    }

    #[test]
    fn many_to_one_concurrent_senders() {
        // The paper's many-to-one motivation: N initiators target one
        // mailbox; receiver needs no per-client resources.
        let net = LoopbackNetwork::with_options(64, DeliveryOrder::InOrder);
        let target = net.add_endpoint(NodeAddr::node(0));
        let win = target
            .init_window(VirtAddr::new(1), Threshold::ops(16))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 16 * 8]).unwrap();
        std::thread::scope(|s| {
            for t in 0..16u32 {
                let init = net.initiator(NodeAddr::node(t + 1));
                s.spawn(move || {
                    init.put_at(
                        NodeAddr::node(0),
                        VirtAddr::new(1),
                        (t as usize) * 8,
                        &[t as u8; 8],
                    )
                    .unwrap();
                });
            }
        });
        let buf = note.wait();
        for t in 0..16usize {
            assert_eq!(&buf.full_buffer()[t * 8..(t + 1) * 8], &[t as u8; 8]);
        }
    }
}
