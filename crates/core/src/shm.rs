//! OS shared-memory primitives for the cross-process transport.
//!
//! Everything the shm backend needs from the kernel lives here, behind a
//! dependency-free seam: a file-backed [`ShmSegment`] mapped with `MAP_SHARED`
//! into each participating process, and a pair of futex wrappers
//! ([`futex_wait`]/[`futex_wake`]) used by the doorbells in
//! [`crate::transport_shm`].
//!
//! The workspace vendors no `libc`, so on Linux (x86_64/aarch64) the three
//! required syscalls — `mmap`, `munmap`, `futex` — are issued directly via
//! inline assembly. Regular file creation/sizing goes through `std::fs`
//! (`File::create` + `set_len`), which also guarantees the fresh mapping
//! reads as zeroes. On any other platform the module still compiles:
//! [`ShmSegment::create`] reports [`RvmaError::TransportFailed`] and the
//! futex wrappers degrade to bounded sleeps, so the rest of the crate (and
//! its tests) gate on [`shm_supported`] instead of `cfg` soup.
//!
//! ## Robustness conventions
//!
//! * Every `futex_wait` takes a bounded timeout and every caller re-checks
//!   its predicate in a loop. A lost wakeup (or a peer dying between
//!   publish and wake) therefore costs latency, never a hang.
//! * The futexes are *shared* (no `FUTEX_PRIVATE_FLAG`): the wait queue is
//!   keyed on the physical page, which is what makes cross-process wakeups
//!   work through two different virtual mappings of one segment.
//! * The creating side owns the file name and unlinks it on drop; openers
//!   never unlink. See DESIGN.md §12 for the peer-death protocol built on
//!   top.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use crate::error::{Result, RvmaError};

/// True when this build can actually create and map shared segments (Linux
/// on x86_64 or aarch64 — the platforms the raw-syscall shim covers).
pub const fn shm_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

// ---------------------------------------------------------------------------
// Raw syscalls (Linux only; no libc in the workspace).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    pub const SYS_MMAP: usize = 9;
    pub const SYS_MUNMAP: usize = 11;
    pub const SYS_FUTEX: usize = 202;

    /// Six-argument Linux syscall. Returns the raw kernel result
    /// (negative errno on failure).
    ///
    /// # Safety
    /// The caller must uphold the invariants of the specific syscall.
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    pub const SYS_MMAP: usize = 222;
    pub const SYS_MUNMAP: usize = 215;
    pub const SYS_FUTEX: usize = 98;

    /// Six-argument Linux syscall (aarch64 `svc 0` convention).
    ///
    /// # Safety
    /// The caller must uphold the invariants of the specific syscall.
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack)
        );
        ret
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod os {
    use super::sys::{syscall6, SYS_FUTEX, SYS_MMAP, SYS_MUNMAP};
    use std::sync::atomic::AtomicU32;

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 1;
    const FUTEX_WAIT: usize = 0;
    const FUTEX_WAKE: usize = 1;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub fn mmap_shared(fd: i32, len: usize) -> std::result::Result<*mut u8, i32> {
        // SAFETY: anonymous address (addr=0), kernel-validated fd/len; a
        // failed mapping comes back as -errno, never a partial mapping.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd as usize,
                0,
            )
        };
        if ret < 0 {
            Err(-ret as i32)
        } else {
            Ok(ret as *mut u8)
        }
    }

    /// # Safety
    /// `ptr..ptr+len` must be a live mapping created by [`mmap_shared`] and
    /// must not be referenced after this call.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }

    pub fn futex_wait(word: &AtomicU32, expected: u32, timeout_ns: u64) {
        let ts = Timespec {
            tv_sec: (timeout_ns / 1_000_000_000) as i64,
            tv_nsec: (timeout_ns % 1_000_000_000) as i64,
        };
        // SAFETY: `word` lives for the duration of the call; FUTEX_WAIT
        // only sleeps, it never writes through the pointer. Spurious
        // returns (EAGAIN/EINTR/ETIMEDOUT) are all fine — callers loop.
        unsafe {
            let _ = syscall6(
                SYS_FUTEX,
                word.as_ptr() as usize,
                FUTEX_WAIT,
                expected as usize,
                &ts as *const Timespec as usize,
                0,
                0,
            );
        }
    }

    pub fn futex_wake(word: &AtomicU32, n: u32) {
        // SAFETY: `word` outlives the call; FUTEX_WAKE reads nothing
        // through the pointer, it only keys the wait queue.
        unsafe {
            let _ = syscall6(
                SYS_FUTEX,
                word.as_ptr() as usize,
                FUTEX_WAKE,
                n as usize,
                0,
                0,
                0,
            );
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod os {
    use std::sync::atomic::AtomicU32;

    pub fn mmap_shared(_fd: i32, _len: usize) -> std::result::Result<*mut u8, i32> {
        Err(38) // ENOSYS
    }

    /// # Safety
    /// Trivially safe — fallback build never creates a mapping.
    pub unsafe fn munmap(_ptr: *mut u8, _len: usize) {}

    pub fn futex_wait(_word: &AtomicU32, _expected: u32, timeout_ns: u64) {
        // Degrade to a bounded sleep; every caller re-checks in a loop.
        std::thread::sleep(std::time::Duration::from_nanos(timeout_ns.min(2_000_000)));
    }

    pub fn futex_wake(_word: &AtomicU32, _n: u32) {}
}

/// Bounded wait on a 32-bit word in a shared mapping: sleeps while
/// `*word == expected`, at most `timeout`. Returns on wake, value change,
/// timeout, or signal — callers must re-check their predicate.
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
    os::futex_wait(
        word,
        expected,
        timeout.as_nanos().min(u64::MAX as u128) as u64,
    );
}

/// Wake up to `n` waiters parked on `word` (in any process mapping it).
pub fn futex_wake(word: &AtomicU32, n: u32) {
    os::futex_wake(word, n);
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

/// A file-backed shared-memory mapping.
///
/// The creator names the file (see [`default_segment_path`]), sizes it with
/// `set_len` (so it reads as zeroes), maps it, and unlinks it on drop.
/// Openers map the existing file and leave the name alone. Both sides hold
/// the mapping until their `ShmSegment` drops, so an unlinked segment stays
/// usable until the last participant exits — the standard POSIX idiom for
/// leak-free cleanup even when a peer dies.
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
    owner: bool,
}

// SAFETY: the mapping is plain shared memory; all concurrent access goes
// through atomics or explicitly synchronised raw copies in transport_shm.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

/// Smallest page size we might be mapped with; touching at this stride
/// faults every page even if the kernel uses larger pages.
const PAGE: usize = 4096;

impl ShmSegment {
    /// Create (exclusively) and map a new zero-filled segment of `len`
    /// bytes at `path`. The segment file is unlinked when this handle
    /// drops.
    pub fn create(path: &Path, len: usize) -> Result<ShmSegment> {
        if !shm_supported() {
            return Err(RvmaError::TransportFailed(
                "shared-memory transport requires Linux on x86_64/aarch64".into(),
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| RvmaError::TransportFailed(format!("create {}: {e}", path.display())))?;
        file.set_len(len as u64)
            .map_err(|e| RvmaError::TransportFailed(format!("size {}: {e}", path.display())))?;
        let ptr = Self::map(&file, len, path)?;
        // Pre-fault every page while the segment is still private to us —
        // the shared-memory analogue of RDMA memory registration. Without
        // this the first touch of each tmpfs page takes a kernel fault on
        // the datapath, which dominates the large-message (bulk-extent)
        // lane. Write-touching is safe here: the file was created
        // exclusively and `set_len` guarantees it is all zeros.
        for off in (0..len).step_by(PAGE) {
            // SAFETY: `off < len` and the mapping is `len` bytes.
            unsafe { std::ptr::write_volatile(ptr.add(off), 0) };
        }
        Ok(ShmSegment {
            ptr,
            len,
            path: path.to_path_buf(),
            owner: true,
        })
    }

    /// Map an existing segment created by a peer process.
    pub fn open(path: &Path) -> Result<ShmSegment> {
        if !shm_supported() {
            return Err(RvmaError::TransportFailed(
                "shared-memory transport requires Linux on x86_64/aarch64".into(),
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| RvmaError::TransportFailed(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| RvmaError::TransportFailed(format!("stat {}: {e}", path.display())))?
            .len() as usize;
        if len == 0 {
            return Err(RvmaError::TransportFailed(format!(
                "segment {} has zero length",
                path.display()
            )));
        }
        let ptr = Self::map(&file, len, path)?;
        // Pre-fault this process's page mappings (read-only touch: the
        // creator owns the contents and may already be publishing data).
        // The pages themselves exist — the creator write-faulted them —
        // so this only populates our page tables, off the datapath.
        for off in (0..len).step_by(PAGE) {
            // SAFETY: `off < len` and the mapping is `len` bytes.
            unsafe { std::ptr::read_volatile(ptr.add(off)) };
        }
        Ok(ShmSegment {
            ptr,
            len,
            path: path.to_path_buf(),
            owner: false,
        })
    }

    fn map(file: &std::fs::File, len: usize, path: &Path) -> Result<*mut u8> {
        use std::os::fd::AsRawFd;
        os::mmap_shared(file.as_raw_fd(), len).map_err(|errno| {
            RvmaError::TransportFailed(format!("mmap {} ({len} B): errno {errno}", path.display()))
        })
    }

    /// Write-fault the pages of `[off, off + len)` so this process's
    /// later stores there take no kernel faults (the read-touch in
    /// [`ShmSegment::open`] installs read-only PTEs; the first store to
    /// each page would otherwise take a write-protect fault on the
    /// datapath). Each page's first byte is rewritten with its current
    /// value, so existing contents survive — only call this on regions
    /// no *other* process writes concurrently.
    pub fn prefault_writable(&self, off: usize, len: usize) {
        let end = off.checked_add(len).expect("prefault range overflow");
        assert!(end <= self.len, "prefault range outside segment");
        for page in (off..end).step_by(PAGE) {
            // SAFETY: `page < self.len`; bytewise volatile read + write.
            unsafe {
                let p = self.ptr.add(page);
                std::ptr::write_volatile(p, std::ptr::read_volatile(p));
            }
        }
    }

    /// Base address of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True only for a zero-length mapping (never constructed; satisfies
    /// the `len`-without-`is_empty` lint).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing file's path (what a peer passes to [`ShmSegment::open`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A `T` reference at byte `offset` into the segment.
    ///
    /// # Safety
    /// `offset` must be in bounds, `T`-aligned, and the bytes there must be
    /// a valid `T` for the mapping's lifetime. Only atomics and `repr(C)`
    /// plain-data structs are used this way.
    pub unsafe fn at<T>(&self, offset: usize) -> &T {
        debug_assert!(offset + std::mem::size_of::<T>() <= self.len);
        debug_assert_eq!(self.ptr.add(offset) as usize % std::mem::align_of::<T>(), 0);
        &*(self.ptr.add(offset) as *const T)
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        // SAFETY: ptr/len are the live mapping created in create/open; the
        // handle is being destroyed so nothing references it afterwards.
        unsafe { os::munmap(self.ptr, self.len) };
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Unique segment path for this process: `/dev/shm` when available (a real
/// tmpfs, the conventional home for POSIX shm), else the system temp dir.
pub fn default_segment_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = if Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "rvma-{tag}-{}-{nonce:x}-{n}.shm",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn create_map_write_read_roundtrip() {
        if !shm_supported() {
            return;
        }
        let path = default_segment_path("segtest");
        let seg = ShmSegment::create(&path, 8192).unwrap();
        assert!(path.exists());
        // Fresh mapping reads as zeroes.
        // SAFETY: offset 0 is aligned and in bounds.
        let w: &AtomicU64 = unsafe { seg.at::<AtomicU64>(0) };
        assert_eq!(w.load(Ordering::SeqCst), 0);
        w.store(0xDEAD_BEEF_F00D, Ordering::SeqCst);

        // A second mapping of the same file sees the store.
        let seg2 = ShmSegment::open(&path).unwrap();
        // SAFETY: as above.
        let w2: &AtomicU64 = unsafe { seg2.at::<AtomicU64>(0) };
        assert_eq!(w2.load(Ordering::SeqCst), 0xDEAD_BEEF_F00D);

        drop(seg2); // opener never unlinks
        assert!(path.exists());
        drop(seg); // creator unlinks
        assert!(!path.exists());
    }

    #[test]
    fn create_refuses_to_clobber() {
        if !shm_supported() {
            return;
        }
        let path = default_segment_path("clobber");
        let _a = ShmSegment::create(&path, 4096).unwrap();
        assert!(ShmSegment::create(&path, 4096).is_err());
    }

    #[test]
    fn futex_wait_times_out_and_wakes() {
        let word = Arc::new(AtomicU32::new(0));
        // Timeout path: value matches, nobody wakes us.
        let t0 = std::time::Instant::now();
        futex_wait(&word, 0, Duration::from_millis(20));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        // Mismatch path: returns immediately.
        futex_wait(&word, 1, Duration::from_secs(5));

        // Wake path: a real sleeper is released well before its timeout.
        let w = Arc::clone(&word);
        let h = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            while w.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(10) {
                futex_wait(&w, 0, Duration::from_millis(100));
            }
            w.load(Ordering::SeqCst)
        });
        std::thread::sleep(Duration::from_millis(10));
        word.store(7, Ordering::SeqCst);
        futex_wake(&word, u32::MAX);
        assert_eq!(h.join().unwrap(), 7);
    }
}
