//! Portals-style list matching — the baseline RVMA's LUT is argued against.
//!
//! Paper Secs. II and IV-A: Portals networks steer incoming operations with
//! *match lists* — per-entry source addresses, 64-bit match bits and
//! **ignore (mask) bits** supporting wildcards, resolved by walking the
//! posted list in order and taking the first hit. That machinery implements
//! MPI matching semantics in hardware, but every lookup is a potentially
//! long ordered scan with masked compares.
//!
//! RVMA deliberately rejects it: a mailbox lookup "always has a
//! single-lookup response (item found or no item found)". This module
//! implements the Portals-style engine faithfully enough to quantify that
//! contrast (see the `lookup_ablation` bench target): [`MatchList`] here
//! vs. [`Lut`](crate::lut::Lut) there.

use crate::addr::NodeAddr;
use std::collections::VecDeque;

/// Wildcard source: match any initiator.
pub const ANY_SOURCE: Option<NodeAddr> = None;

/// One posted match entry (a Portals ME / MPI posted receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEntry {
    /// Required source, or `None` for any-source.
    pub source: Option<NodeAddr>,
    /// Match bits compared against the message tag.
    pub match_bits: u64,
    /// Ignore mask: bit positions set here are *not* compared
    /// (`1` = wildcard bit).
    pub ignore_bits: u64,
    /// Opaque handle to the buffer this entry steers into.
    pub buffer_id: u64,
}

impl MatchEntry {
    /// Does an incoming `(source, tag)` satisfy this entry?
    pub fn matches(&self, source: NodeAddr, tag: u64) -> bool {
        if let Some(required) = self.source {
            if required != source {
                return false;
            }
        }
        (tag ^ self.match_bits) & !self.ignore_bits == 0
    }
}

/// Statistics of a match-list's lookups, quantifying the scan cost the
/// paper's single-lookup design avoids.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that walked the whole list without a hit.
    pub misses: u64,
    /// Total entries examined across all lookups.
    pub entries_scanned: u64,
}

impl MatchStats {
    /// Mean entries examined per lookup.
    pub fn mean_scan(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.entries_scanned as f64 / lookups as f64
        }
    }
}

/// An ordered match list with wildcard support (the Portals/MPI model):
/// first-posted, first-matched; a hit consumes the entry (use-once, like a
/// posted receive).
#[derive(Debug, Default)]
pub struct MatchList {
    entries: VecDeque<MatchEntry>,
    stats: MatchStats,
}

impl MatchList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry (posted receives match in FIFO order).
    pub fn post(&mut self, entry: MatchEntry) {
        self.entries.push_back(entry);
    }

    /// Resolve `(source, tag)`: scan in posting order, remove and return
    /// the first matching entry. This is the ordered, multi-candidate
    /// resolution RVMA's single-lookup table does not need.
    pub fn resolve(&mut self, source: NodeAddr, tag: u64) -> Option<MatchEntry> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.matches(source, tag) {
                self.stats.hits += 1;
                self.stats.entries_scanned += i as u64 + 1;
                return self.entries.remove(i);
            }
        }
        self.stats.misses += 1;
        self.stats.entries_scanned += self.entries.len() as u64;
        None
    }

    /// Entries currently posted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are posted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup statistics so far.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(src: Option<NodeAddr>, bits: u64, ignore: u64, id: u64) -> MatchEntry {
        MatchEntry {
            source: src,
            match_bits: bits,
            ignore_bits: ignore,
            buffer_id: id,
        }
    }

    #[test]
    fn exact_match_and_consume() {
        let mut l = MatchList::new();
        l.post(entry(Some(NodeAddr::node(1)), 42, 0, 7));
        assert_eq!(
            l.resolve(NodeAddr::node(1), 42).map(|e| e.buffer_id),
            Some(7)
        );
        // Use-once: the entry is gone.
        assert_eq!(l.resolve(NodeAddr::node(1), 42), None);
        assert!(l.is_empty());
    }

    #[test]
    fn source_mismatch_rejects() {
        let mut l = MatchList::new();
        l.post(entry(Some(NodeAddr::node(1)), 42, 0, 7));
        assert_eq!(l.resolve(NodeAddr::node(2), 42), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn any_source_wildcard() {
        let mut l = MatchList::new();
        l.post(entry(ANY_SOURCE, 42, 0, 7));
        assert!(l.resolve(NodeAddr::node(99), 42).is_some());
    }

    #[test]
    fn ignore_bits_wildcard_tags() {
        let mut l = MatchList::new();
        // Match any tag whose high 32 bits equal 0xAB: ignore the low 32.
        l.post(entry(ANY_SOURCE, 0xAB << 32, 0xFFFF_FFFF, 1));
        assert!(l.resolve(NodeAddr::node(0), (0xAB << 32) | 1234).is_some());
        l.post(entry(ANY_SOURCE, 0xAB << 32, 0xFFFF_FFFF, 2));
        assert!(l.resolve(NodeAddr::node(0), 0xCD << 32).is_none());
    }

    #[test]
    fn fifo_resolution_order() {
        // Two overlapping entries: the earlier-posted one wins — the
        // ordered semantics that force sequential hardware scans.
        let mut l = MatchList::new();
        l.post(entry(ANY_SOURCE, 0, u64::MAX, 1)); // matches everything
        l.post(entry(Some(NodeAddr::node(1)), 5, 0, 2)); // more specific
        let hit = l.resolve(NodeAddr::node(1), 5).unwrap();
        assert_eq!(hit.buffer_id, 1, "first-posted wins despite specificity");
    }

    #[test]
    fn scan_cost_grows_with_list_depth() {
        let mut l = MatchList::new();
        for i in 0..100 {
            l.post(entry(Some(NodeAddr::node(7)), i, 0, i));
        }
        // Resolve the last entry: 100 entries scanned.
        assert!(l.resolve(NodeAddr::node(7), 99).is_some());
        assert_eq!(l.stats().entries_scanned, 100);
        assert_eq!(l.stats().hits, 1);
        // A miss scans everything remaining.
        assert!(l.resolve(NodeAddr::node(7), 500).is_none());
        assert_eq!(l.stats().misses, 1);
        assert_eq!(l.stats().entries_scanned, 100 + 99);
        assert!(l.stats().mean_scan() > 99.0);
    }

    #[test]
    fn empty_stats() {
        let l = MatchList::new();
        assert_eq!(l.stats().mean_scan(), 0.0);
    }
}
