//! Bounded MPSC ring queues for the wire datapath.
//!
//! The threaded transport used to route every fragment through an
//! *unbounded* channel: a slow receiver under incast grew the wire queue
//! without bound (a memory leak wearing a latency costume), and every
//! `recv` on an idle worker went through a futex. [`RingQueue`] replaces
//! it with the queue a multi-queue NIC actually has:
//!
//! * **Bounded.** A power-of-two ring of slots ([Vyukov's bounded MPMC
//!   design](https://www.1024cores.net), restricted to one consumer). A
//!   full ring exerts **backpressure**: [`RingQueue::push`] spins, then
//!   yields, until a slot frees — it never drops and never allocates. The
//!   resident fragment count is therefore structurally ≤ the capacity.
//! * **Doorbell wake.** The single consumer may park when idle
//!   ([`RingQueue::park_consumer`]); a producer that observes the parked
//!   flag after publishing rings the doorbell (`Thread::unpark`). The
//!   flag is checked with one `SeqCst` fence pair (the Dekker pattern:
//!   either the producer sees the flag, or the consumer's post-flag
//!   emptiness re-check sees the element — a wakeup can never be lost).
//!   A *hot* consumer never parks, so the fragment path takes no futex.
//! * **Observable.** [`RingStats`] (shared by every ring of one network)
//!   counts the high-water depth, full-ring producer stalls, and consumer
//!   park wakeups, surfaced through `AsyncNetwork::queue_stats()` and the
//!   endpoint's `StatsSnapshot`.
//!
//! Safety model: slot payloads live in `UnsafeCell<MaybeUninit<T>>`,
//! guarded by the per-slot sequence number — a producer writes the value
//! *before* releasing the sequence, a consumer reads it *after* acquiring
//! it, and the head/tail counters give each side exclusive ownership of
//! the slot between those points.

use crate::csync::{self, AtomicBool, AtomicUsize, CheckCell, Mutation, Mutex};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default wire-queue capacity (fragments) — generous enough that a
/// well-provisioned run never stalls, small enough that a wedged receiver
/// caps resident queue memory.
pub const DEFAULT_WIRE_QUEUE_CAP: usize = 4096;

/// Producer spin iterations on a full ring before each yield.
const FULL_SPIN: u32 = 64;

/// Backpressure / depth counters, shared by all rings of one transport.
#[derive(Debug, Default)]
pub struct RingStats {
    /// High-water mark of any ring's occupancy (elements resident at the
    /// moment a push completed). Never exceeds the configured capacity.
    pub max_depth: AtomicU64,
    /// Pushes that found the ring full and had to stall (counted once per
    /// stalled push, not once per retry).
    pub full_stalls: AtomicU64,
    /// Times a parked consumer was woken (doorbell rings plus the rare
    /// spurious unpark).
    pub park_wakeups: AtomicU64,
}

impl RingStats {
    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> RingStatsSnapshot {
        RingStatsSnapshot {
            max_depth: self.max_depth.load(Ordering::Relaxed),
            full_stalls: self.full_stalls.load(Ordering::Relaxed),
            park_wakeups: self.park_wakeups.load(Ordering::Relaxed),
        }
    }

    fn observe_depth(&self, depth: u64) {
        if depth > self.max_depth.load(Ordering::Relaxed) {
            self.max_depth.fetch_max(depth, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`RingStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStatsSnapshot {
    /// High-water ring occupancy.
    pub max_depth: u64,
    /// Pushes that stalled on a full ring.
    pub full_stalls: u64,
    /// Parked-consumer wakeups.
    pub park_wakeups: u64,
}

struct Slot<T> {
    /// Vyukov sequence: `index` when free for the producer of turn
    /// `index`, `index + 1` once its value is published, `index + cap`
    /// after the consumer recycles it.
    seq: AtomicUsize,
    val: CheckCell<MaybeUninit<T>>,
}

/// Head/tail counters live on their own cache lines so producers hammering
/// the tail never false-share with the consumer's head.
#[repr(align(64))]
struct Padded<T>(T);

/// A bounded multi-producer / **single-consumer** ring queue.
///
/// The consumer side (`try_pop`, `park_consumer`, `register_consumer`) must
/// only ever be driven by one thread at a time — the wire worker that owns
/// the ring.
pub struct RingQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    tail: Padded<AtomicUsize>,
    head: Padded<AtomicUsize>,
    /// True while the consumer is parked (or committing to park).
    parked: AtomicBool,
    /// The consumer thread's handle, registered once at worker start.
    consumer: Mutex<Option<csync::thread::Thread>>,
    /// Set after the consumer has exited; pushes fail instead of spinning
    /// forever on a ring nobody will ever drain.
    closed: AtomicBool,
    stats: Arc<RingStats>,
}

// SAFETY: slot payloads are handed between threads through the sequence
// protocol documented on `Slot::seq`; all other state is atomics/locks.
unsafe impl<T: Send> Send for RingQueue<T> {}
unsafe impl<T: Send> Sync for RingQueue<T> {}

/// Why a push did not enqueue. Both variants return the value.
pub enum PushError<T> {
    /// Every slot is occupied (backpressure; retry after the consumer
    /// makes progress).
    Full(T),
    /// The ring was closed — the consumer is gone for good.
    Closed(T),
}

impl<T> RingQueue<T> {
    /// A ring with `capacity` slots (rounded up to a power of two, min 2),
    /// publishing its counters into `stats`.
    pub fn with_stats(capacity: usize, stats: Arc<RingStats>) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: CheckCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingQueue {
            slots,
            mask: cap - 1,
            tail: Padded(AtomicUsize::new(0)),
            head: Padded(AtomicUsize::new(0)),
            parked: AtomicBool::new(false),
            consumer: Mutex::new(None),
            closed: AtomicBool::new(false),
            stats,
        }
    }

    /// A ring with private counters (tests, standalone use).
    pub fn new(capacity: usize) -> Self {
        Self::with_stats(capacity, Arc::new(RingStats::default()))
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Elements currently resident (approximate under concurrency).
    pub fn depth(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// The shared counters this ring publishes into.
    pub fn stats(&self) -> &Arc<RingStats> {
        &self.stats
    }

    /// Non-blocking push. On success the doorbell is rung if the consumer
    /// is parked.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(value));
        }
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - tail as isize;
            if diff == 0 {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the tail CAS for `tail` grants
                        // exclusive write access to this slot until the
                        // sequence release below.
                        slot.val.with_mut(|v| unsafe { (*v).write(value) });
                        let publish = if csync::mutation(Mutation::RingPublishRelaxed) {
                            Ordering::Relaxed
                        } else {
                            Ordering::Release
                        };
                        slot.seq.store(tail.wrapping_add(1), publish);
                        let depth = tail
                            .wrapping_add(1)
                            .wrapping_sub(self.head.0.load(Ordering::Relaxed));
                        self.stats.observe_depth(depth as u64);
                        self.ring_doorbell();
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if diff < 0 {
                return Err(PushError::Full(value));
            } else {
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Blocking push: backpressure, never drop. Spins briefly, then
    /// yields, until a slot frees. Fails only when the ring is closed
    /// (the consumer exited), returning the value.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut value = match self.try_push(value) {
            Ok(()) => return Ok(()),
            Err(PushError::Closed(v)) => return Err(v),
            Err(PushError::Full(v)) => v,
        };
        self.stats.full_stalls.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        loop {
            if spins < csync::spin_budget(FULL_SPIN) {
                spins += 1;
                csync::spin_loop();
            } else {
                spins = 0;
                csync::thread::yield_now();
            }
            value = match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => v,
            };
        }
    }

    /// Single-consumer pop.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq as isize - head.wrapping_add(1) as isize == 0 {
            self.head.0.store(head.wrapping_add(1), Ordering::Relaxed);
            // SAFETY: the acquired sequence proves the producer's write
            // completed, and advancing head makes this consumer the sole
            // owner of the slot until the recycle release below.
            let value = slot.val.with(|v| unsafe { (*v).assume_init_read() });
            slot.seq
                .store(head.wrapping_add(self.mask + 1), Ordering::Release);
            Some(value)
        } else {
            None
        }
    }

    /// Record the calling thread as the ring's consumer (for doorbell
    /// wakes). Call once from the worker before the first `park_consumer`.
    pub fn register_consumer(&self) {
        *self.consumer.lock() = Some(csync::thread::current());
    }

    /// Park the consumer until a producer rings the doorbell. Must only be
    /// called by the registered consumer thread, with the ring observed
    /// empty. Re-checks emptiness after raising the parked flag, so a
    /// publish racing the park is never slept through. May return
    /// spuriously; callers loop.
    pub fn park_consumer(&self) {
        self.parked.store(true, Ordering::SeqCst);
        csync::fence(Ordering::SeqCst);
        // Dekker re-check: a producer either sees `parked == true` after
        // its publish (and unparks us), or its publish is visible to this
        // emptiness check (and we bail out).
        if !self.is_empty() || self.closed.load(Ordering::SeqCst) {
            self.parked.store(false, Ordering::SeqCst);
            return;
        }
        csync::thread::park();
        self.parked.store(false, Ordering::SeqCst);
        self.stats.park_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// No slots claimed: `tail` advances at claim time (before the value is
    /// published), so `false` here can mean "an entry is still being
    /// written", not just "an entry is poppable".
    pub(crate) fn is_empty(&self) -> bool {
        let head = self.head.0.load(Ordering::SeqCst);
        let tail = self.tail.0.load(Ordering::SeqCst);
        tail == head
    }

    fn ring_doorbell(&self) {
        csync::fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) && self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.consumer.lock().as_ref() {
                t.unpark();
            }
        }
    }

    /// Mark the ring closed: subsequent pushes fail instead of spinning on
    /// a ring whose consumer has exited. Call after joining the consumer.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.ring_doorbell();
    }
}

impl<T> Drop for RingQueue<T> {
    fn drop(&mut self) {
        // Drop any values still resident (puts submitted after shutdown).
        while self.try_pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for RingQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingQueue")
            .field("capacity", &self.capacity())
            .field("depth", &self.depth())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(RingQueue::<u32>::new(0).capacity(), 2);
        assert_eq!(RingQueue::<u32>::new(5).capacity(), 8);
        assert_eq!(RingQueue::<u32>::new(8).capacity(), 8);
    }

    #[test]
    fn fifo_within_single_producer() {
        let q = RingQueue::new(8);
        for i in 0..8u32 {
            q.try_push(i).map_err(|_| ()).unwrap();
        }
        assert!(matches!(q.try_push(99), Err(PushError::Full(99))));
        for i in 0..8u32 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = RingQueue::new(4);
        for round in 0..64u32 {
            q.try_push(round).map_err(|_| ()).unwrap();
            assert_eq!(q.try_pop(), Some(round));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn blocking_push_exerts_backpressure_and_counts_stalls() {
        let q = Arc::new(RingQueue::new(4));
        for i in 0..4u32 {
            q.push(i).map_err(|_| ()).unwrap();
        }
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(42).map_err(|_| ()).unwrap())
        };
        // The producer is stalled on the full ring; free one slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_pop(), Some(0));
        producer.join().unwrap();
        assert!(q.stats().snapshot().full_stalls >= 1);
        assert!(q.stats().snapshot().max_depth <= 4);
    }

    #[test]
    fn mpsc_under_contention_delivers_everything() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        let q = Arc::new(RingQueue::new(8));
        let sum = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for k in 0..PER {
                        q.push(p * PER + k).map_err(|_| ()).unwrap();
                    }
                });
            }
            let q = q.clone();
            let sum = sum.clone();
            s.spawn(move || {
                let mut got = 0u64;
                while got < PRODUCERS * PER {
                    match q.try_pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        });
        let n = PRODUCERS * PER;
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert!(q.stats().snapshot().max_depth <= 8);
    }

    #[test]
    fn doorbell_wakes_parked_consumer() {
        let q = Arc::new(RingQueue::new(8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                q.register_consumer();
                loop {
                    if let Some(v) = q.try_pop() {
                        return v;
                    }
                    q.park_consumer();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        q.push(7u32).map_err(|_| ()).unwrap();
        assert_eq!(consumer.join().unwrap(), 7);
        assert!(q.stats().snapshot().park_wakeups >= 1);
    }

    #[test]
    fn publish_racing_park_is_not_slept_through() {
        // Hammer the park/publish race: the consumer must never hang.
        let q = Arc::new(RingQueue::new(2));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                q.register_consumer();
                let mut got = 0u32;
                while got < 10_000 {
                    if q.try_pop().is_some() {
                        got += 1;
                    } else {
                        q.park_consumer();
                    }
                }
            })
        };
        for _ in 0..10_000u32 {
            q.push(1u8).map_err(|_| ()).unwrap();
        }
        consumer.join().unwrap();
    }

    #[test]
    fn closed_ring_fails_pushes() {
        let q = RingQueue::new(4);
        q.push(1u32).map_err(|_| ()).unwrap();
        q.close();
        assert!(q.push(2).is_err());
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        // Resident values are still poppable (the Drop drain relies on it).
        assert_eq!(q.try_pop(), Some(1));
    }

    #[test]
    fn drop_releases_resident_values() {
        let q = RingQueue::new(8);
        let tracked = Arc::new(());
        for _ in 0..5 {
            q.push(tracked.clone()).map_err(|_| ()).unwrap();
        }
        assert_eq!(Arc::strong_count(&tracked), 6);
        drop(q);
        assert_eq!(Arc::strong_count(&tracked), 1);
    }
}
