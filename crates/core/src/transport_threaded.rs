//! Asynchronous in-process transport: a background "wire" thread.
//!
//! [`LoopbackNetwork`](crate::transport::LoopbackNetwork) runs the target
//! NIC datapath inline on the caller's thread — ideal for tests, but the
//! caller observes its own put's completion synchronously. `AsyncNetwork`
//! decouples them the way real hardware does:
//!
//! * `put` enqueues fragments and **returns immediately**;
//! * a dedicated wire thread (optionally adding a fixed delivery latency)
//!   runs the endpoint datapaths, so completion pointers are written from
//!   *another thread* — the receiver's `Notification::wait` exercises the
//!   true Monitor/MWait path;
//! * NACKs become what they are on a real network: asynchronous
//!   notifications, collected per initiator via
//!   [`AsyncInitiator::take_nacks`].
//!
//! Dropping the network stops the wire thread after draining in-flight
//! traffic.

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use crate::transport::{DeliveryOrder, DEFAULT_MTU};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

enum WireMsg {
    Deliver {
        dest: NodeAddr,
        frag: Fragment,
        nacks: Arc<Mutex<Vec<(VirtAddr, NackReason)>>>,
    },
    Stop,
}

struct Shared {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    mtu: usize,
    order: DeliveryOrder,
    rng: Mutex<StdRng>,
    tx: Sender<WireMsg>,
}

/// The asynchronous in-process network.
pub struct AsyncNetwork {
    shared: Arc<Shared>,
    wire: Option<JoinHandle<u64>>,
}

impl AsyncNetwork {
    /// Build a network whose wire thread adds `latency` before each
    /// fragment's delivery (pass `Duration::ZERO` for none).
    pub fn new(mtu: usize, order: DeliveryOrder, latency: Duration) -> AsyncNetwork {
        assert!(mtu > 0, "MTU must be positive");
        let seed = match order {
            DeliveryOrder::OutOfOrder { seed } => seed,
            DeliveryOrder::InOrder => 0,
        };
        let (tx, rx) = unbounded::<WireMsg>();
        let shared = Arc::new(Shared {
            endpoints: RwLock::new(HashMap::new()),
            mtu,
            order,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            tx,
        });
        let wire_shared = shared.clone();
        let wire = std::thread::Builder::new()
            .name("rvma-wire".into())
            .spawn(move || {
                let mut delivered = 0u64;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WireMsg::Stop => break,
                        WireMsg::Deliver { dest, frag, nacks } => {
                            if !latency.is_zero() {
                                std::thread::sleep(latency);
                            }
                            let ep = wire_shared.endpoints.read().get(&dest).cloned();
                            match ep {
                                Some(ep) => {
                                    if let DeliverResult::Nack(r) = ep.deliver(&frag) {
                                        nacks.lock().push((frag.dst_vaddr, r));
                                    }
                                    delivered += 1;
                                }
                                None => nacks
                                    .lock()
                                    .push((frag.dst_vaddr, NackReason::NoSuchMailbox)),
                            }
                        }
                    }
                }
                delivered
            })
            .expect("spawn wire thread");
        AsyncNetwork {
            shared,
            wire: Some(wire),
        }
    }

    /// Default: in-order, default MTU, zero added latency.
    pub fn default_network() -> AsyncNetwork {
        AsyncNetwork::new(DEFAULT_MTU, DeliveryOrder::InOrder, Duration::ZERO)
    }

    /// Create and attach an endpoint at `addr`.
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::new(addr);
        self.shared.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// Attach an existing endpoint.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        self.shared
            .endpoints
            .write()
            .insert(endpoint.addr(), endpoint);
    }

    /// An asynchronous initiator bound to `src`.
    pub fn initiator(&self, src: NodeAddr) -> AsyncInitiator {
        AsyncInitiator {
            shared: self.shared.clone(),
            src,
            next_op: AtomicU64::new(1),
            nacks: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Block until every fragment submitted so far has been delivered.
    /// Implemented as a sentinel round trip through the wire queue.
    pub fn quiesce(&self) {
        // An empty fragment to a guaranteed-missing endpoint acts as a
        // barrier: the wire thread processes in FIFO order.
        let nacks = Arc::new(Mutex::new(Vec::new()));
        let barrier = Fragment {
            initiator: NodeAddr::new(u32::MAX, u32::MAX),
            op_id: 0,
            dst_vaddr: VirtAddr::new(u64::MAX),
            op_total_len: 0,
            offset: 0,
            data: Bytes::new(),
        };
        let _ = self.shared.tx.send(WireMsg::Deliver {
            dest: NodeAddr::new(u32::MAX, u32::MAX),
            frag: barrier,
            nacks: nacks.clone(),
        });
        while nacks.lock().is_empty() {
            std::thread::yield_now();
        }
    }
}

impl Drop for AsyncNetwork {
    fn drop(&mut self) {
        let _ = self.shared.tx.send(WireMsg::Stop);
        if let Some(h) = self.wire.take() {
            let _ = h.join();
        }
    }
}

/// Asynchronous initiator handle.
pub struct AsyncInitiator {
    shared: Arc<Shared>,
    src: NodeAddr,
    next_op: AtomicU64,
    nacks: Arc<Mutex<Vec<(VirtAddr, NackReason)>>>,
}

impl AsyncInitiator {
    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.src
    }

    /// Asynchronous `RVMA_Put` at offset 0: enqueue and return. Delivery,
    /// counting, and completion happen on the wire thread.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Asynchronous `RVMA_Put` with an explicit buffer offset.
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        if self.shared.endpoints.read().get(&dest).is_none() {
            return Err(RvmaError::UnknownDestination);
        }
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;
        let mtu = self.shared.mtu;

        let mut frags: Vec<Fragment> = if payload.is_empty() {
            vec![Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: 0,
                offset,
                data: payload.clone(),
            }]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|start| {
                    let end = (start + mtu).min(payload.len());
                    Fragment {
                        initiator: self.src,
                        op_id,
                        dst_vaddr: vaddr,
                        op_total_len: total,
                        offset: offset + start,
                        data: payload.slice(start..end),
                    }
                })
                .collect()
        };
        if let DeliveryOrder::OutOfOrder { .. } = self.shared.order {
            frags.shuffle(&mut *self.shared.rng.lock());
        }
        for frag in frags {
            self.shared
                .tx
                .send(WireMsg::Deliver {
                    dest,
                    frag,
                    nacks: self.nacks.clone(),
                })
                .map_err(|_| RvmaError::UnknownDestination)?;
        }
        Ok(())
    }

    /// Drain the asynchronous NACK notifications received so far.
    pub fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.nacks.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;

    #[test]
    fn async_put_completes_cross_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 4096]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[3; 4096])
            .unwrap();
        // The caller returned before delivery; wait() parks until the wire
        // thread's completing write.
        let buf = note.wait();
        assert_eq!(buf.data(), vec![3u8; 4096].as_slice());
    }

    #[test]
    fn out_of_order_async_delivery_is_correct() {
        let net = AsyncNetwork::new(64, DeliveryOrder::OutOfOrder { seed: 3 }, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(1024))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 1024]).unwrap();
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 250) as u8).collect();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &payload)
            .unwrap();
        assert_eq!(note.wait().data(), payload.as_slice());
    }

    #[test]
    fn nacks_arrive_asynchronously() {
        let net = AsyncNetwork::default_network();
        let _server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        client
            .put(NodeAddr::node(1), VirtAddr::new(99), &[0; 8])
            .unwrap(); // returns Ok: the NACK is asynchronous
        net.quiesce();
        let nacks = client.take_nacks();
        assert_eq!(nacks, vec![(VirtAddr::new(99), NackReason::NoSuchMailbox)]);
        assert!(client.take_nacks().is_empty(), "drained");
    }

    #[test]
    fn unknown_destination_fails_fast() {
        let net = AsyncNetwork::default_network();
        let client = net.initiator(NodeAddr::node(2));
        assert_eq!(
            client.put(NodeAddr::node(9), VirtAddr::new(1), &[0; 8]),
            Err(RvmaError::UnknownDestination)
        );
    }

    #[test]
    fn added_latency_delays_completion() {
        let net = AsyncNetwork::new(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_millis(10),
        );
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let t0 = std::time::Instant::now();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 64])
            .unwrap();
        let submitted = t0.elapsed();
        let _ = note.wait();
        let completed = t0.elapsed();
        assert!(submitted < Duration::from_millis(5), "put must not block");
        assert!(completed >= Duration::from_millis(10));
    }

    #[test]
    fn many_async_senders() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64 * 16]).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let init = net.initiator(NodeAddr::node(t + 1));
                s.spawn(move || {
                    for k in 0..8usize {
                        init.put_at(
                            NodeAddr::node(0),
                            VirtAddr::new(1),
                            (t as usize * 8 + k) * 16,
                            &[t as u8 + 1; 16],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let buf = note.wait();
        assert_eq!(buf.len(), 64 * 16);
        for t in 0..8usize {
            assert_eq!(buf.full_buffer()[t * 8 * 16], t as u8 + 1);
        }
    }

    #[test]
    fn drop_joins_wire_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let _note = win.post_buffer(vec![0; 8]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 8])
            .unwrap();
        drop(net); // must not hang
    }
}
