//! Asynchronous in-process transport: a pool of background "wire" threads.
//!
//! [`LoopbackNetwork`](crate::transport::LoopbackNetwork) runs the target
//! NIC datapath inline on the caller's thread — ideal for tests, but the
//! caller observes its own put's completion synchronously. `AsyncNetwork`
//! decouples them the way real hardware does:
//!
//! * `put` enqueues fragments and **returns immediately**;
//! * a pool of wire workers (optionally adding a fixed delivery latency
//!   per fragment) runs the endpoint datapaths, so completion pointers are
//!   written from *other threads* — the receiver's `Notification::wait`
//!   exercises the true Monitor/MWait path;
//! * NACKs become what they are on a real network: asynchronous
//!   notifications, collected per initiator via
//!   [`AsyncInitiator::take_nacks`].
//!
//! # Threading model
//!
//! The pool models a multi-queue NIC. Each worker owns one FIFO queue;
//! fragments are sharded across queues by a hash of **(destination node,
//! destination mailbox)**. Two consequences:
//!
//! * **Per-mailbox ordering is preserved.** Every fragment addressed to a
//!   given mailbox traverses the same FIFO queue and is delivered by the
//!   same worker, so a `Managed`-mode (cursor-append) mailbox observes
//!   submissions in order even with many workers. Cross-mailbox ordering is
//!   *not* preserved — by design; RVMA's threshold semantics never needed
//!   it.
//! * **Disjoint mailboxes scale.** An N-way incast to N distinct mailboxes
//!   spreads across min(N, workers) queues; with the sharded LUT and the
//!   mailbox's copy-outside-the-lock delivery there is no shared lock left
//!   on the datapath, so workers proceed independently.
//!
//! The worker count comes from [`AsyncNetwork::with_options`] (or
//! [`EndpointConfig::wire_workers`](crate::endpoint::EndpointConfig) via
//! [`AsyncNetwork::for_endpoint_config`]); [`AsyncNetwork::new`] keeps the
//! single-worker behaviour.
//!
//! [`AsyncNetwork::quiesce`] broadcasts a flush barrier to every queue and
//! waits for all workers to ack it; because queues are FIFO, every fragment
//! submitted before the call is delivered when it returns. Dropping the
//! network enqueues a stop marker *behind* any in-flight traffic on every
//! queue and joins each worker, so shutdown deterministically drains all
//! shards — no fragment accepted by `put` is ever dropped by teardown.

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, EndpointConfig, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use crate::transport::{DeliveryOrder, DEFAULT_MTU};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

enum WireMsg {
    Deliver {
        dest: NodeAddr,
        frag: Fragment,
        nacks: Arc<Mutex<Vec<(VirtAddr, NackReason)>>>,
    },
    /// Quiesce barrier: the worker bumps the counter when every message
    /// queued before this one has been processed.
    Flush {
        acks: Arc<AtomicUsize>,
    },
    Stop,
}

struct Shared {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    mtu: usize,
    order: DeliveryOrder,
    rng: Mutex<StdRng>,
    /// One FIFO queue per wire worker.
    queues: Vec<Sender<WireMsg>>,
}

impl Shared {
    /// Queue index for a fragment: hash of (destination node, destination
    /// mailbox), so one mailbox's traffic always lands on one FIFO queue.
    fn queue_for(&self, dest: NodeAddr, vaddr: VirtAddr) -> &Sender<WireMsg> {
        let key = ((dest.nid as u64) << 32 | dest.pid as u64) ^ vaddr.raw().rotate_left(17);
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.queues[h as usize % self.queues.len()]
    }
}

/// The asynchronous in-process network.
pub struct AsyncNetwork {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<u64>>,
}

impl AsyncNetwork {
    /// Build a network with a single wire worker that adds `latency` before
    /// each fragment's delivery (pass `Duration::ZERO` for none).
    pub fn new(mtu: usize, order: DeliveryOrder, latency: Duration) -> AsyncNetwork {
        Self::with_options(mtu, order, latency, 1)
    }

    /// Build a network with an explicit wire-worker count. Fragments shard
    /// across workers by destination mailbox (see the module docs);
    /// `workers` is clamped to at least 1.
    pub fn with_options(
        mtu: usize,
        order: DeliveryOrder,
        latency: Duration,
        workers: usize,
    ) -> AsyncNetwork {
        assert!(mtu > 0, "MTU must be positive");
        let workers = workers.max(1);
        let seed = match order {
            DeliveryOrder::OutOfOrder { seed } => seed,
            DeliveryOrder::InOrder => 0,
        };
        let mut queues = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<WireMsg>();
            queues.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            endpoints: RwLock::new(HashMap::new()),
            mtu,
            order,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queues,
        });
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rvma-wire-{i}"))
                    .spawn(move || {
                        let mut delivered = 0u64;
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                WireMsg::Stop => break,
                                WireMsg::Flush { acks } => {
                                    acks.fetch_add(1, Ordering::AcqRel);
                                }
                                WireMsg::Deliver { dest, frag, nacks } => {
                                    if !latency.is_zero() {
                                        std::thread::sleep(latency);
                                    }
                                    let ep = shared.endpoints.read().get(&dest).cloned();
                                    match ep {
                                        Some(ep) => {
                                            if let DeliverResult::Nack(r) = ep.deliver(&frag) {
                                                nacks.lock().push((frag.dst_vaddr, r));
                                            }
                                            delivered += 1;
                                        }
                                        None => nacks
                                            .lock()
                                            .push((frag.dst_vaddr, NackReason::NoSuchMailbox)),
                                    }
                                }
                            }
                        }
                        delivered
                    })
                    .expect("spawn wire worker")
            })
            .collect();
        AsyncNetwork { shared, workers }
    }

    /// Build a network sized from an endpoint configuration's
    /// [`wire_workers`](EndpointConfig::wire_workers).
    pub fn for_endpoint_config(
        mtu: usize,
        order: DeliveryOrder,
        latency: Duration,
        config: &EndpointConfig,
    ) -> AsyncNetwork {
        Self::with_options(mtu, order, latency, config.wire_workers)
    }

    /// Default: in-order, default MTU, zero added latency, one worker.
    pub fn default_network() -> AsyncNetwork {
        AsyncNetwork::new(DEFAULT_MTU, DeliveryOrder::InOrder, Duration::ZERO)
    }

    /// Number of wire workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Create and attach an endpoint at `addr`.
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::new(addr);
        self.shared.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// Attach an existing endpoint.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        self.shared
            .endpoints
            .write()
            .insert(endpoint.addr(), endpoint);
    }

    /// An asynchronous initiator bound to `src`.
    pub fn initiator(&self, src: NodeAddr) -> AsyncInitiator {
        AsyncInitiator {
            shared: self.shared.clone(),
            src,
            next_op: AtomicU64::new(1),
            nacks: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Block until every fragment submitted so far has been delivered:
    /// a flush barrier is broadcast to every worker queue (each is FIFO,
    /// so the ack implies everything ahead of it was processed).
    pub fn quiesce(&self) {
        let acks = Arc::new(AtomicUsize::new(0));
        for q in &self.shared.queues {
            let _ = q.send(WireMsg::Flush { acks: acks.clone() });
        }
        while acks.load(Ordering::Acquire) < self.shared.queues.len() {
            std::thread::yield_now();
        }
    }
}

impl Drop for AsyncNetwork {
    fn drop(&mut self) {
        // A Stop marker lands behind all previously queued traffic on each
        // FIFO queue, so every shard drains fully before its worker exits.
        for q in &self.shared.queues {
            let _ = q.send(WireMsg::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Asynchronous initiator handle.
pub struct AsyncInitiator {
    shared: Arc<Shared>,
    src: NodeAddr,
    next_op: AtomicU64,
    nacks: Arc<Mutex<Vec<(VirtAddr, NackReason)>>>,
}

impl AsyncInitiator {
    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.src
    }

    /// Asynchronous `RVMA_Put` at offset 0: enqueue and return. Delivery,
    /// counting, and completion happen on a wire worker.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Asynchronous `RVMA_Put` with an explicit buffer offset. All
    /// fragments of the put target one mailbox, hence one worker queue:
    /// submission order is preserved end-to-end unless the network itself
    /// is configured `OutOfOrder`.
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        if self.shared.endpoints.read().get(&dest).is_none() {
            return Err(RvmaError::UnknownDestination);
        }
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;
        let mtu = self.shared.mtu;

        let mut frags: Vec<Fragment> = if payload.is_empty() {
            vec![Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: 0,
                offset,
                data: payload.clone(),
            }]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|start| {
                    let end = (start + mtu).min(payload.len());
                    Fragment {
                        initiator: self.src,
                        op_id,
                        dst_vaddr: vaddr,
                        op_total_len: total,
                        offset: offset + start,
                        data: payload.slice(start..end),
                    }
                })
                .collect()
        };
        if let DeliveryOrder::OutOfOrder { .. } = self.shared.order {
            frags.shuffle(&mut *self.shared.rng.lock());
        }
        let queue = self.shared.queue_for(dest, vaddr);
        for frag in frags {
            queue
                .send(WireMsg::Deliver {
                    dest,
                    frag,
                    nacks: self.nacks.clone(),
                })
                .map_err(|_| RvmaError::UnknownDestination)?;
        }
        Ok(())
    }

    /// Drain the asynchronous NACK notifications received so far.
    pub fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.nacks.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::mailbox::MailboxMode;

    #[test]
    fn async_put_completes_cross_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 4096]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[3; 4096])
            .unwrap();
        // The caller returned before delivery; wait() parks until the wire
        // worker's completing write.
        let buf = note.wait();
        assert_eq!(buf.data(), vec![3u8; 4096].as_slice());
    }

    #[test]
    fn out_of_order_async_delivery_is_correct() {
        let net = AsyncNetwork::new(64, DeliveryOrder::OutOfOrder { seed: 3 }, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(1024))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 1024]).unwrap();
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 250) as u8).collect();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &payload)
            .unwrap();
        assert_eq!(note.wait().data(), payload.as_slice());
    }

    #[test]
    fn nacks_arrive_asynchronously() {
        let net = AsyncNetwork::default_network();
        let _server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        client
            .put(NodeAddr::node(1), VirtAddr::new(99), &[0; 8])
            .unwrap(); // returns Ok: the NACK is asynchronous
        net.quiesce();
        let nacks = client.take_nacks();
        assert_eq!(nacks, vec![(VirtAddr::new(99), NackReason::NoSuchMailbox)]);
        assert!(client.take_nacks().is_empty(), "drained");
    }

    #[test]
    fn unknown_destination_fails_fast() {
        let net = AsyncNetwork::default_network();
        let client = net.initiator(NodeAddr::node(2));
        assert_eq!(
            client.put(NodeAddr::node(9), VirtAddr::new(1), &[0; 8]),
            Err(RvmaError::UnknownDestination)
        );
    }

    #[test]
    fn added_latency_delays_completion() {
        let net = AsyncNetwork::new(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_millis(10),
        );
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let t0 = std::time::Instant::now();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 64])
            .unwrap();
        let submitted = t0.elapsed();
        let _ = note.wait();
        let completed = t0.elapsed();
        assert!(submitted < Duration::from_millis(5), "put must not block");
        assert!(completed >= Duration::from_millis(10));
    }

    #[test]
    fn many_async_senders() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64 * 16]).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let init = net.initiator(NodeAddr::node(t + 1));
                s.spawn(move || {
                    for k in 0..8usize {
                        init.put_at(
                            NodeAddr::node(0),
                            VirtAddr::new(1),
                            (t as usize * 8 + k) * 16,
                            &[t as u8 + 1; 16],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let buf = note.wait();
        assert_eq!(buf.len(), 64 * 16);
        for t in 0..8usize {
            assert_eq!(buf.full_buffer()[t * 8 * 16], t as u8 + 1);
        }
    }

    #[test]
    fn drop_joins_wire_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let _note = win.post_buffer(vec![0; 8]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 8])
            .unwrap();
        drop(net); // must not hang
    }

    #[test]
    fn worker_pool_fans_out_incast() {
        // 8 senders to 8 disjoint mailboxes through a 4-worker pool; every
        // epoch completes with the right bytes.
        let net = AsyncNetwork::with_options(64, DeliveryOrder::InOrder, Duration::ZERO, 4);
        assert_eq!(net.worker_count(), 4);
        let server = net.add_endpoint(NodeAddr::node(0));
        let mut notes = Vec::new();
        for i in 0..8u64 {
            let win = server
                .init_window(VirtAddr::new(i), Threshold::bytes(1024))
                .unwrap();
            notes.push(win.post_buffer(vec![0; 1024]).unwrap());
        }
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let init = net.initiator(NodeAddr::node(i as u32 + 1));
                s.spawn(move || {
                    init.put(NodeAddr::node(0), VirtAddr::new(i), &[i as u8 + 1; 1024])
                        .unwrap();
                });
            }
        });
        for (i, n) in notes.iter_mut().enumerate() {
            assert_eq!(n.wait().data(), vec![i as u8 + 1; 1024].as_slice());
        }
        assert_eq!(server.stats().epochs_completed, 8);
    }

    #[test]
    fn worker_pool_preserves_per_mailbox_ordering() {
        // A Managed (cursor-append) mailbox is the strictest ordering
        // consumer: bytes must land in submission order. Eight workers must
        // not reorder one mailbox's stream, because all its fragments hash
        // to one FIFO queue.
        let net = AsyncNetwork::with_options(16, DeliveryOrder::InOrder, Duration::ZERO, 8);
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window_mode(
                VirtAddr::new(7),
                Threshold::bytes(256),
                MailboxMode::Managed,
            )
            .unwrap();
        let mut note = win.post_buffer(vec![0; 256]).unwrap();
        let expected: Vec<u8> = (0..=255u8).collect();
        // 16 puts of 16 bytes each; each put further fragments at MTU 16.
        for chunk in expected.chunks(16) {
            client
                .put(NodeAddr::node(1), VirtAddr::new(7), chunk)
                .unwrap();
        }
        assert_eq!(note.wait().data(), expected.as_slice());
    }

    #[test]
    fn quiesce_flushes_every_worker_queue() {
        let net = AsyncNetwork::with_options(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_micros(200),
            4,
        );
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(9));
        // One put per mailbox so traffic lands on several queues.
        for i in 0..8u64 {
            let win = server
                .init_window(VirtAddr::new(i), Threshold::bytes(32))
                .unwrap();
            let _ = win.post_buffer(vec![0; 32]).unwrap();
            client
                .put(NodeAddr::node(0), VirtAddr::new(i), &[1; 32])
                .unwrap();
        }
        net.quiesce();
        assert_eq!(server.stats().epochs_completed, 8);
    }

    #[test]
    fn drop_drains_all_shard_queues() {
        // Queue traffic across a 4-worker pool, then drop immediately: the
        // Stop markers sit behind the traffic, so every fragment still
        // delivers before the workers exit.
        let server;
        {
            let net = AsyncNetwork::with_options(
                DEFAULT_MTU,
                DeliveryOrder::InOrder,
                Duration::from_micros(100),
                4,
            );
            server = net.add_endpoint(NodeAddr::node(0));
            let client = net.initiator(NodeAddr::node(9));
            for i in 0..8u64 {
                let win = server
                    .init_window(VirtAddr::new(i), Threshold::bytes(16))
                    .unwrap();
                let _ = win.post_buffer(vec![0; 16]).unwrap();
                client
                    .put(NodeAddr::node(0), VirtAddr::new(i), &[2; 16])
                    .unwrap();
            }
            // net dropped here with fragments still queued.
        }
        assert_eq!(server.stats().epochs_completed, 8);
    }
}
