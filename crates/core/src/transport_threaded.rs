//! Asynchronous in-process transport: a pool of background "wire" threads.
//!
//! [`LoopbackNetwork`](crate::transport::LoopbackNetwork) runs the target
//! NIC datapath inline on the caller's thread — ideal for tests, but the
//! caller observes its own put's completion synchronously. `AsyncNetwork`
//! decouples them the way real hardware does:
//!
//! * `put` enqueues fragments and **returns immediately**;
//! * a pool of wire workers (optionally adding a fixed delivery latency
//!   per fragment) runs the endpoint datapaths, so completion pointers are
//!   written from *other threads* — the receiver's `Notification::wait`
//!   exercises the true Monitor/MWait path;
//! * NACKs become what they are on a real network: asynchronous
//!   notifications, collected per initiator via
//!   [`AsyncInitiator::take_nacks`].
//!
//! # Threading model
//!
//! The pool models a multi-queue NIC. Each worker owns one **bounded MPSC
//! ring queue** ([`RingQueue`]); fragments are
//! sharded across queues by a hash of **(destination node, destination
//! mailbox)**. Two consequences:
//!
//! * **Per-mailbox ordering is preserved.** Every fragment addressed to a
//!   given mailbox traverses the same FIFO queue and is delivered by the
//!   same worker, so a `Managed`-mode (cursor-append) mailbox observes
//!   submissions in order even with many workers. Cross-mailbox ordering is
//!   *not* preserved — by design; RVMA's threshold semantics never needed
//!   it.
//! * **Disjoint mailboxes scale.** An N-way incast to N distinct mailboxes
//!   spreads across min(N, workers) queues; with the sharded LUT and the
//!   mailbox's copy-outside-the-lock delivery there is no shared lock left
//!   on the datapath, so workers proceed independently.
//!
//! **Backpressure contract.** Each ring holds at most
//! [`EndpointConfig::wire_queue_cap`](crate::endpoint::EndpointConfig)
//! messages. A submission finding its ring full **blocks** (spin, then
//! yield) until the worker frees a slot — it never silently drops a
//! fragment and never grows the queue. A slow receiver under incast
//! therefore stalls its senders instead of swallowing unbounded memory;
//! the stall count and high-water depth are observable through
//! [`AsyncNetwork::queue_stats`] and the endpoint's `StatsSnapshot`.
//!
//! **Idle policy.** A worker that finds its ring empty runs an adaptive
//! spin → yield → park progression
//! ([`wire_idle_spins`](crate::endpoint::EndpointConfig) busy-poll
//! iterations, then [`wire_idle_yields`](crate::endpoint::EndpointConfig)
//! `yield_now` rounds, then `thread::park`). Producers ring a doorbell
//! (one `SeqCst` flag check per push, `unpark` only when the worker is
//! actually parked), so an idle worker costs nothing while a hot worker
//! never takes a futex wake on the fragment path.
//!
//! The worker count comes from [`AsyncNetwork::with_options`] (or
//! [`EndpointConfig::wire_workers`](crate::endpoint::EndpointConfig) via
//! [`AsyncNetwork::for_endpoint_config`]); [`AsyncNetwork::new`] keeps the
//! single-worker behaviour.
//!
//! # Submission path
//!
//! The initiator side is batched and allocation-light, which is what makes
//! high small-message rates possible (the initiator-side analogue of the
//! paper's receive-side amortization, Fig. 6):
//!
//! * **Route cache.** Each initiator keeps a small lock-free cache of
//!   (destination, mailbox) → worker-queue routes, validated against the
//!   network's endpoint **generation counter** (bumped by
//!   `add_endpoint`/`register`/`remove_endpoint`). A steady-state `put`
//!   touches no `RwLock` and never re-hashes the shard; only a cache miss
//!   consults the endpoint table (and fails fast with
//!   [`RvmaError::UnknownDestination`]).
//! * **Inline fast path.** A put of at most one MTU skips the fragment
//!   loop entirely: one pooled payload copy, one [`Fragment`], one channel
//!   send — no intermediate `Vec`, no shuffle, no per-fragment `Arc`
//!   clones.
//! * **Payload pool.** Fragment payload storage is recycled through a
//!   per-initiator [`PayloadPool`]: the copy every asynchronous put must
//!   make lands in a reused allocation once the pool is warm
//!   ([`AsyncInitiator::pool_stats`]).
//! * **Doorbell batching.** A multi-fragment put crosses the channel as a
//!   single `WireMsg` batch per (put × worker shard) instead of one send
//!   per fragment, and [`AsyncInitiator::batch`] coalesces *many* puts
//!   into one crossing, flushed explicitly or by an auto-flush doorbell
//!   threshold. Wire workers deliver batches through
//!   [`RvmaEndpoint::deliver_batch`], which amortizes LUT lookups, mailbox
//!   lock acquisitions, stats updates — and NACK publication: one sink
//!   lock per batch, not per fragment.
//!
//! [`AsyncNetwork::quiesce`] broadcasts a flush barrier to every queue and
//! waits for all workers to ack it; because queues are FIFO, every fragment
//! submitted before the call is delivered when it returns. Dropping the
//! network enqueues a stop marker *behind* any in-flight traffic on every
//! queue and joins each worker, so shutdown deterministically drains all
//! shards — no fragment accepted by `put` is ever dropped by teardown.
//!
//! # Fault injection (the link-level reliability layer)
//!
//! [`AsyncNetwork::for_endpoint_config`] with a non-trivial
//! [`EndpointConfig::fault_model`](crate::endpoint::EndpointConfig) turns
//! each wire worker into a lossy link with its own seeded
//! [`FaultInjector`] (seeds derived from
//! [`fault_seed`](crate::endpoint::EndpointConfig), counters shared in one
//! [`FaultStats`]). A faulted fragment is handled
//! the way a reliable link layer handles it:
//!
//! * **drop / defer** — the fragment is re-enqueued on the *same* worker
//!   queue with its attempt counter bumped: the retransmitted copy lands
//!   behind whatever is queued, which is also how reorder/delay manifest
//!   on this transport.
//! * **duplicate** — delivered twice; the receiver's dedup window (enable
//!   [`EndpointConfig::dedup_window`](crate::endpoint::EndpointConfig)!)
//!   suppresses the copy.
//! * **crash** — the destination endpoint is removed from the network, so
//!   the crashing fragment's retries and all later traffic surface
//!   asynchronous `NoSuchMailbox` NACKs instead of hanging.
//!
//! Once a fragment has burned
//! [`retry_budget`](crate::endpoint::EndpointConfig) attempts it is
//! delivered fault-free — the zero-hang guarantee a link-level reliability
//! layer provides (a real NIC would declare the link dead instead; the
//! crash fault models that path). `quiesce` is retry-aware: it re-runs the
//! flush barrier until no retransmission is pending, and teardown drains
//! queues fault-free, so neither ever strands a fragment.

use crate::addr::{NodeAddr, VirtAddr};
use crate::csync::{self, AtomicU64 as CheckedU64, Mutation};
use crate::endpoint::{DeliverResult, EndpointConfig, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use crate::notify::AtomicWaker;
use crate::pool::{PayloadPool, PoolStats};
use crate::retry::{FaultInjector, FaultModel, FaultStats};
use crate::ring::{PushError, RingQueue, RingStats, RingStatsSnapshot};
use crate::telemetry::{self, EventKind, Telemetry};
use crate::transport::{DeliveryOrder, DEFAULT_MTU};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default doorbell threshold of [`AsyncInitiator::batch`]: a batch
/// auto-flushes once this many fragments are pending.
pub const DEFAULT_DOORBELL_FRAGS: usize = 256;

/// Slots in an initiator's route cache (direct-mapped).
const ROUTE_SLOTS: usize = 8;

type NackSink = Arc<Mutex<Vec<(VirtAddr, NackReason)>>>;

/// Shared delivery-completion state of a notified put
/// ([`AsyncInitiator::put_notify`]): one atomic fragment countdown
/// travelling with the put's wire messages, decremented by the wire worker
/// at each fragment's **final disposition** — delivered to the endpoint or
/// NACKed — never on a retransmission (the retried copy carries the handle
/// onward). When the countdown hits zero the worker publishes `done` and
/// wakes the registered [`PutFuture`] through the same [`AtomicWaker`]
/// handoff the notification path uses: no lock, one `fetch_sub` + one
/// `wake` on the hot path.
pub(crate) struct PutNotify {
    /// Fragments not yet at their final disposition.
    remaining: AtomicU64,
    /// Any fragment NACKed (duplicated copies count once per NACK rolled).
    nacked: AtomicBool,
    /// Published after the last decrement, before the wake.
    done: AtomicBool,
    waker: AtomicWaker,
}

impl PutNotify {
    pub(crate) fn new(fragments: u64) -> Arc<PutNotify> {
        debug_assert!(fragments > 0);
        Arc::new(PutNotify {
            remaining: AtomicU64::new(fragments),
            nacked: AtomicBool::new(false),
            done: AtomicBool::new(false),
            waker: AtomicWaker::new(),
        })
    }

    /// `n` fragments reached their final disposition (0 is a no-op used by
    /// batch passes whose every fragment was re-enqueued for retry).
    pub(crate) fn fragments_done(&self, n: u64, any_nacked: bool) {
        if any_nacked {
            self.nacked.store(true, Ordering::SeqCst);
        }
        if n == 0 {
            return;
        }
        let prev = self.remaining.fetch_sub(n, Ordering::SeqCst);
        debug_assert!(prev >= n, "put_notify fragment countdown underflow");
        if prev == n {
            self.done.store(true, Ordering::SeqCst);
            self.waker.wake();
        }
    }
}

/// What a [`PutFuture`] resolves to: the put's fragments all reached the
/// wire's final disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutDelivery {
    /// Fragments the put was split into.
    pub fragments: u64,
    /// True when any fragment was NACKed (e.g. `NoSuchMailbox` after a
    /// crash fault); the NACK reasons themselves are in
    /// [`AsyncInitiator::take_nacks`].
    pub nacked: bool,
}

/// Future side of [`AsyncInitiator::put_notify`]: resolves when every
/// fragment of the put has been delivered (or NACKed) by the wire workers.
///
/// This is the *initiator's* local-completion signal — the moment the
/// paper's `RVMA_Put` buffer-reuse guarantee holds — not the receiver's
/// threshold completion, which remains the notification machinery's job.
/// The future is independent of any executor; poll it from one, or
/// `block_on` it.
#[must_use = "a PutFuture does nothing unless polled"]
pub struct PutFuture {
    notify: Arc<PutNotify>,
    fragments: u64,
}

impl PutFuture {
    /// Wrap a delivery countdown shared with a transport backend (the
    /// threaded workers decrement it in-process; the shm client's response
    /// pump decrements it from cross-process acks).
    pub(crate) fn from_notify(notify: Arc<PutNotify>, fragments: u64) -> PutFuture {
        PutFuture { notify, fragments }
    }

    /// True once delivery finished (the future would resolve immediately).
    pub fn is_done(&self) -> bool {
        self.notify.done.load(Ordering::SeqCst)
    }
}

impl Future for PutFuture {
    type Output = PutDelivery;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<PutDelivery> {
        let report = |n: &PutNotify| PutDelivery {
            fragments: self.fragments,
            nacked: n.nacked.load(Ordering::SeqCst),
        };
        if self.notify.done.load(Ordering::SeqCst) {
            return Poll::Ready(report(&self.notify));
        }
        self.notify.waker.register(cx.waker());
        // Re-check after registration: a worker that published `done`
        // between the first check and the register either saw the waker
        // (and woke it) or lost the race to this load. Either way no wake
        // is missed.
        if self.notify.done.load(Ordering::SeqCst) {
            return Poll::Ready(report(&self.notify));
        }
        Poll::Pending
    }
}

impl std::fmt::Debug for PutFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PutFuture")
            .field("fragments", &self.fragments)
            .field("done", &self.is_done())
            .finish()
    }
}

enum WireMsg {
    /// A single fragment (the small-message inline fast path, and the
    /// retransmission path of the fault layer).
    Deliver {
        dest: NodeAddr,
        frag: Fragment,
        nacks: NackSink,
        /// Fault-layer attempts already burned on this fragment (0 for a
        /// fresh submission). Once it reaches the retry budget the
        /// fragment is delivered without rolling the fault dice.
        attempt: u32,
        /// Delivery countdown of a notified put; retransmissions carry it
        /// forward so the decrement happens exactly once per fragment.
        notify: Option<Arc<PutNotify>>,
    },
    /// A submission batch for one destination endpoint: the fragments of
    /// one multi-fragment put, or many coalesced puts from a
    /// [`PutBatch`]. One channel crossing and one NACK-sink reference for
    /// the whole batch.
    DeliverBatch {
        dest: NodeAddr,
        frags: Vec<Fragment>,
        nacks: NackSink,
        /// Delivery countdown when the batch is one notified put's
        /// fragments ([`PutBatch`] coalesced batches carry `None`).
        notify: Option<Arc<PutNotify>>,
    },
    /// Quiesce barrier: the worker bumps the counter when every message
    /// queued before this one has been processed.
    Flush {
        acks: Arc<AtomicUsize>,
    },
    Stop,
}

/// Fault-injection state of an [`AsyncNetwork`] (present only when the
/// endpoint config carries a non-trivial [`FaultModel`]).
struct FaultPlan {
    model: FaultModel,
    /// Per-fragment attempt budget; the attempt that reaches it delivers
    /// fault-free (bounded zero-hang guarantee).
    budget: u32,
    /// Base seed; each worker's injector derives from it by index.
    seed: u64,
    /// Network-wide fault counters, shared by every worker's injector.
    stats: Arc<FaultStats>,
    /// Retransmissions enqueued but not yet fully processed. `quiesce`
    /// repeats its barrier until this reaches zero; incremented *before*
    /// the re-enqueue send and decremented only after the retried message
    /// is completely processed, so it is never transiently zero while a
    /// retry is in flight.
    pending_retries: AtomicU64,
}

struct Shared {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    /// Bumped on every endpoint add/register/remove; route caches and the
    /// workers' endpoint caches revalidate against it. Starts at 1 so a
    /// zeroed route-cache slot can never spuriously match.
    generation: AtomicU64,
    mtu: usize,
    order: DeliveryOrder,
    rng: Mutex<StdRng>,
    /// One bounded FIFO ring per wire worker (see the module docs'
    /// backpressure contract).
    queues: Vec<Arc<RingQueue<WireMsg>>>,
    /// Depth/backpressure counters shared by every ring of this network.
    ring_stats: Arc<RingStats>,
    /// Configuration applied to endpoints created by
    /// [`AsyncNetwork::add_endpoint`] (dedup window, fault model, …).
    endpoint_config: EndpointConfig,
    faults: Option<FaultPlan>,
    /// Network-wide telemetry recorder (present when
    /// [`EndpointConfig::telemetry`] is set); attached to every endpoint
    /// the network creates or registers.
    telemetry: Option<Arc<Telemetry>>,
}

impl Shared {
    /// Crash fault: the destination endpoint vanishes from the network.
    /// Pending and future fragments to it NACK `NoSuchMailbox` the same
    /// way [`AsyncNetwork::remove_endpoint`] makes them.
    fn crash_endpoint(&self, dest: NodeAddr) {
        if self.endpoints.write().remove(&dest).is_some() {
            self.generation.fetch_add(1, Ordering::Release);
        }
    }
}

#[inline]
fn pack_addr(a: NodeAddr) -> u64 {
    ((a.nid as u64) << 32) | a.pid as u64
}

#[inline]
fn route_hash(dest: u64, vaddr: u64) -> u64 {
    (dest ^ vaddr.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

impl Shared {
    /// Queue index for a fragment: hash of (destination node, destination
    /// mailbox), so one mailbox's traffic always lands on one FIFO queue.
    fn queue_index(&self, dest: NodeAddr, vaddr: VirtAddr) -> usize {
        route_hash(pack_addr(dest), vaddr.raw()) as usize % self.queues.len()
    }
}

/// One direct-mapped route-cache slot, published seqlock-style: `seq` is
/// even when stable, odd while a writer is mid-publish; readers that
/// observe a seq change retry as a miss. All fields are atomics, so
/// readers and the (single successful) writer never data-race.
///
/// `pub(crate)` (fields on the checked `csync` atomics) so the
/// `check::models` suite can enumerate reader-vs-publisher interleavings
/// against the shipping implementation.
#[derive(Default)]
pub(crate) struct RouteSlot {
    seq: CheckedU64,
    dest: CheckedU64,
    vaddr: CheckedU64,
    generation: CheckedU64,
    queue: CheckedU64,
}

impl RouteSlot {
    pub(crate) fn read(&self, dest: u64, vaddr: u64, generation: u64) -> Option<usize> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let d = self.dest.load(Ordering::Acquire);
        let v = self.vaddr.load(Ordering::Acquire);
        let g = self.generation.load(Ordering::Acquire);
        let q = self.queue.load(Ordering::Acquire);
        if self.seq.load(Ordering::Acquire) != s1 {
            return None;
        }
        (d == dest && v == vaddr && g == generation).then_some(q as usize)
    }

    pub(crate) fn publish(&self, dest: u64, vaddr: u64, generation: u64, queue: usize) {
        // Seeded mutation (checker builds only): skip the odd-sequence
        // write lock and store the fields bare — a concurrent reader can
        // then observe a half-updated route that still passes its seq
        // recheck. `check::mutations` proves the model flags this.
        if csync::mutation(Mutation::SeqlockTornPublish) {
            self.dest.store(dest, Ordering::Release);
            self.vaddr.store(vaddr, Ordering::Release);
            self.generation.store(generation, Ordering::Release);
            self.queue.store(queue as u64, Ordering::Release);
            return;
        }
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            return; // another writer mid-publish: caching is best-effort
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.dest.store(dest, Ordering::Release);
        self.vaddr.store(vaddr, Ordering::Release);
        self.generation.store(generation, Ordering::Release);
        self.queue.store(queue as u64, Ordering::Release);
        self.seq.store(s + 2, Ordering::Release);
    }
}

struct RouteCache {
    slots: [RouteSlot; ROUTE_SLOTS],
}

impl RouteCache {
    fn new() -> Self {
        RouteCache {
            slots: std::array::from_fn(|_| RouteSlot::default()),
        }
    }

    fn slot(&self, dest: u64, vaddr: u64) -> &RouteSlot {
        &self.slots[route_hash(dest, vaddr) as usize % ROUTE_SLOTS]
    }
}

/// Point-in-time route-cache counters of an [`AsyncInitiator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Submissions routed from the cache (no lock, no rehash).
    pub hits: u64,
    /// Submissions that consulted the endpoint table.
    pub misses: u64,
}

impl RouteStats {
    /// Hits as a fraction of all route resolutions (1.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The asynchronous in-process network.
pub struct AsyncNetwork {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<u64>>,
}

/// A wire worker's generation-validated endpoint cache: steady-state
/// delivery resolves destinations from a thread-local map instead of the
/// shared `RwLock`ed table. Negative results are not cached.
struct EndpointCache {
    generation: u64,
    map: HashMap<NodeAddr, Arc<RvmaEndpoint>>,
}

impl EndpointCache {
    fn new() -> Self {
        EndpointCache {
            generation: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, shared: &Shared, dest: NodeAddr) -> Option<Arc<RvmaEndpoint>> {
        let current = shared.generation.load(Ordering::Acquire);
        if current != self.generation {
            self.map.clear();
            self.generation = current;
        }
        if let Some(ep) = self.map.get(&dest) {
            return Some(ep.clone());
        }
        let ep = shared.endpoints.read().get(&dest).cloned();
        if let Some(ep) = &ep {
            self.map.insert(dest, ep.clone());
        }
        ep
    }
}

/// Deliver one fragment `copies` times (2 = duplication fault), publishing
/// any NACKs into the submitting initiator's sink. Returns whether any
/// copy NACKed (the fragment's final disposition for a notified put).
fn deliver_one(
    shared: &Shared,
    cache: &mut EndpointCache,
    dest: NodeAddr,
    frag: &Fragment,
    nacks: &NackSink,
    copies: u32,
) -> bool {
    telemetry::record(
        &shared.telemetry,
        EventKind::WireDeliver,
        telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
        frag.op_id,
        frag.offset as u64,
    );
    let mut nacked = false;
    match cache.get(shared, dest) {
        Some(ep) => {
            for _ in 0..copies {
                if let DeliverResult::Nack(r) = ep.deliver(frag) {
                    nacks.lock().push((frag.dst_vaddr, r));
                    nacked = true;
                }
            }
        }
        None => {
            nacks
                .lock()
                .push((frag.dst_vaddr, NackReason::NoSuchMailbox));
            nacked = true;
        }
    }
    nacked
}

/// Deliver a batch through `RvmaEndpoint::deliver_batch` (one sink lock
/// for all the batch's NACKs). Returns (fragments delivered, NACKs
/// published for this batch).
fn deliver_many(
    shared: &Shared,
    cache: &mut EndpointCache,
    dest: NodeAddr,
    frags: &[Fragment],
    nacks: &NackSink,
    scratch_nacks: &mut Vec<(VirtAddr, NackReason)>,
) -> (u64, u64) {
    let mut delivered = 0u64;
    if shared.telemetry.is_some() {
        for f in frags {
            telemetry::record(
                &shared.telemetry,
                EventKind::WireDeliver,
                telemetry::initiator_key(f.initiator.nid, f.initiator.pid),
                f.op_id,
                f.offset as u64,
            );
        }
    }
    match cache.get(shared, dest) {
        Some(ep) => {
            ep.deliver_batch(frags, &mut |vaddr, reason| {
                scratch_nacks.push((vaddr, reason));
            });
            delivered += frags.len() as u64;
        }
        None => {
            scratch_nacks.extend(
                frags
                    .iter()
                    .map(|f| (f.dst_vaddr, NackReason::NoSuchMailbox)),
            );
        }
    }
    let nack_count = scratch_nacks.len() as u64;
    if !scratch_nacks.is_empty() {
        nacks.lock().append(scratch_nacks);
    }
    (delivered, nack_count)
}

/// A retried message has been fully processed: release its slot in the
/// pending-retry count `quiesce` waits on.
#[inline]
/// The quiesce barrier shared by [`AsyncNetwork::quiesce`] and the
/// initiator-side [`Transport::flush`]: broadcast a flush marker to every
/// worker ring, wait for all acks, and repeat while any link-level
/// retransmission is still pending (a faulted fragment's retries land
/// behind the first barrier).
fn quiesce_shared(shared: &Shared) {
    loop {
        let acks = Arc::new(AtomicUsize::new(0));
        for q in &shared.queues {
            let _ = q.push(WireMsg::Flush { acks: acks.clone() });
        }
        while acks.load(Ordering::Acquire) < shared.queues.len() {
            std::thread::yield_now();
        }
        match &shared.faults {
            Some(plan) if plan.pending_retries.load(Ordering::Acquire) > 0 => continue,
            _ => break,
        }
    }
}

fn finish_retry(faults: Option<&FaultPlan>, attempt: u32) {
    if attempt > 0 {
        if let Some(plan) = faults {
            plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Queue a link-level retransmission on this worker's own ring without
/// ever blocking on it: the worker IS the ring's consumer, so a blocking
/// push on a full ring would deadlock the shard. Overflow spills into the
/// worker-local `deferred` list, drained whenever the ring has room (or
/// runs dry) and at Stop. `pending_retries` covers spilled messages the
/// same as ringed ones, so `quiesce` still waits them out.
fn enqueue_retry(ring: &RingQueue<WireMsg>, deferred: &mut VecDeque<WireMsg>, msg: WireMsg) {
    if let Err(PushError::Full(m) | PushError::Closed(m)) = ring.try_push(msg) {
        deferred.push_back(m);
    }
}

/// The worker's receive step: ring first, spilled retransmissions when the
/// ring runs dry, then the adaptive spin → yield → park idle progression.
/// Returns `None` after a park wake-up (the caller re-polls).
fn next_msg(
    ring: &RingQueue<WireMsg>,
    deferred: &mut VecDeque<WireMsg>,
    idle_spins: u32,
    idle_yields: u32,
) -> Option<WireMsg> {
    // Opportunistically migrate one spilled retransmission back onto the
    // ring (behind the queued traffic, which is where a retransmitted copy
    // belongs) so the spill list drains even while the shard stays busy.
    if let Some(m) = deferred.pop_front() {
        if let Err(PushError::Full(m) | PushError::Closed(m)) = ring.try_push(m) {
            deferred.push_front(m);
        }
    }
    if let Some(m) = ring.try_pop() {
        return Some(m);
    }
    if let Some(m) = deferred.pop_front() {
        return Some(m);
    }
    for _ in 0..idle_spins {
        if let Some(m) = ring.try_pop() {
            return Some(m);
        }
        std::hint::spin_loop();
    }
    for _ in 0..idle_yields {
        if let Some(m) = ring.try_pop() {
            return Some(m);
        }
        std::thread::yield_now();
    }
    ring.park_consumer();
    None
}

fn wire_worker(shared: Arc<Shared>, idx: usize, latency: Duration) -> u64 {
    let mut delivered = 0u64;
    let mut cache = EndpointCache::new();
    // Retransmissions go to the back of this worker's own ring, keeping
    // every retried fragment on the FIFO that owns its mailbox; `deferred`
    // absorbs them when the ring is full (see `enqueue_retry`).
    let ring = shared.queues[idx].clone();
    ring.register_consumer();
    let mut deferred: VecDeque<WireMsg> = VecDeque::new();
    // Spinning only helps when producer and consumer can run in parallel.
    // On a single-CPU host an idle-spinning worker *holds the core the
    // producer needs*, turning every put into a scheduler-granularity
    // stall — park immediately instead and let the doorbell's wakeup
    // preemption provide the fast handoff.
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        > 1;
    let idle_spins = if parallel {
        shared.endpoint_config.wire_idle_spins
    } else {
        0
    };
    let idle_yields = if parallel {
        shared.endpoint_config.wire_idle_yields
    } else {
        0
    };
    // Each worker rolls its own seeded dice; the counters are shared, so
    // `crash_after_frags` keys off the network-wide transmit sequence.
    let mut injector = shared.faults.as_ref().map(|plan| {
        let worker_seed = plan.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultInjector::new(plan.model, worker_seed, plan.stats.clone())
    });
    // NACKs of one batch collect here and publish with a single sink lock.
    let mut scratch_nacks: Vec<(VirtAddr, NackReason)> = Vec::new();
    loop {
        let Some(msg) = next_msg(&ring, &mut deferred, idle_spins, idle_yields) else {
            continue; // woke from park: re-poll
        };
        match msg {
            WireMsg::Stop => {
                // Retransmissions re-enqueued (or spilled) behind the Stop
                // marker must not be stranded: drain the ring and the spill
                // list, delivering fault-free.
                loop {
                    let tail = match ring.try_pop() {
                        Some(m) => m,
                        None => match deferred.pop_front() {
                            Some(m) => m,
                            None => break,
                        },
                    };
                    match tail {
                        WireMsg::Deliver {
                            dest,
                            frag,
                            nacks,
                            attempt,
                            notify,
                        } => {
                            let nacked = deliver_one(&shared, &mut cache, dest, &frag, &nacks, 1);
                            delivered += 1;
                            if let Some(n) = notify {
                                n.fragments_done(1, nacked);
                            }
                            finish_retry(shared.faults.as_ref(), attempt);
                        }
                        WireMsg::DeliverBatch {
                            dest,
                            frags,
                            nacks,
                            notify,
                        } => {
                            let (n, nacked) = deliver_many(
                                &shared,
                                &mut cache,
                                dest,
                                &frags,
                                &nacks,
                                &mut scratch_nacks,
                            );
                            delivered += n;
                            if let Some(pn) = notify {
                                pn.fragments_done(frags.len() as u64, nacked > 0);
                            }
                        }
                        WireMsg::Flush { acks } => {
                            acks.fetch_add(1, Ordering::AcqRel);
                        }
                        WireMsg::Stop => {}
                    }
                }
                break;
            }
            WireMsg::Flush { acks } => {
                acks.fetch_add(1, Ordering::AcqRel);
            }
            WireMsg::Deliver {
                dest,
                frag,
                nacks,
                attempt,
                notify,
            } => {
                let mut copies = 1u32;
                if let (Some(inj), Some(plan)) = (injector.as_mut(), shared.faults.as_ref()) {
                    // Zero-length fragments carry no payload a fabric could
                    // corrupt; they bypass the dice (same rule as
                    // LossyNetwork). The attempt that reaches the budget
                    // delivers fault-free: bounded retransmission, no hang.
                    if !frag.data.is_empty() && attempt < plan.budget {
                        let d = inj.roll();
                        if d.crash {
                            shared.crash_endpoint(dest);
                        }
                        if d.drop || d.defer_spans > 0 {
                            // Link-level retransmit; a deferred fragment is
                            // simply one that re-arrives behind the queue's
                            // younger traffic. Not a final disposition: the
                            // retried copy carries the put-notify countdown.
                            plan.pending_retries.fetch_add(1, Ordering::AcqRel);
                            telemetry::record(
                                &shared.telemetry,
                                EventKind::Retransmit,
                                telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
                                frag.op_id,
                                (attempt + 1) as u64,
                            );
                            enqueue_retry(
                                &ring,
                                &mut deferred,
                                WireMsg::Deliver {
                                    dest,
                                    frag,
                                    nacks,
                                    attempt: attempt + 1,
                                    notify,
                                },
                            );
                            finish_retry(shared.faults.as_ref(), attempt);
                            continue;
                        }
                        if d.duplicate {
                            copies = 2;
                        }
                    }
                }
                if !latency.is_zero() {
                    std::thread::sleep(latency);
                }
                let nacked = deliver_one(&shared, &mut cache, dest, &frag, &nacks, copies);
                delivered += 1;
                if let Some(n) = notify {
                    n.fragments_done(1, nacked);
                }
                finish_retry(shared.faults.as_ref(), attempt);
            }
            WireMsg::DeliverBatch {
                dest,
                frags,
                nacks,
                notify,
            } => {
                // Fragments of this pass reaching their final disposition
                // (a duplicated fragment still finalizes once; a retried
                // one finalizes on a later pass).
                let mut finalized = frags.len() as u64;
                let frags = match (injector.as_mut(), shared.faults.as_ref()) {
                    (Some(inj), Some(plan)) => {
                        // Roll per fragment; survivors stay a batch, faulted
                        // fragments retry individually (attempt 1: the
                        // batch pass was their first transmission).
                        let mut clean: Vec<Fragment> = Vec::with_capacity(frags.len());
                        for frag in frags {
                            if frag.data.is_empty() {
                                clean.push(frag);
                                continue;
                            }
                            let d = inj.roll();
                            if d.crash {
                                shared.crash_endpoint(dest);
                            }
                            if d.drop || d.defer_spans > 0 {
                                plan.pending_retries.fetch_add(1, Ordering::AcqRel);
                                telemetry::record(
                                    &shared.telemetry,
                                    EventKind::Retransmit,
                                    telemetry::initiator_key(
                                        frag.initiator.nid,
                                        frag.initiator.pid,
                                    ),
                                    frag.op_id,
                                    1,
                                );
                                enqueue_retry(
                                    &ring,
                                    &mut deferred,
                                    WireMsg::Deliver {
                                        dest,
                                        frag,
                                        nacks: nacks.clone(),
                                        attempt: 1,
                                        notify: notify.clone(),
                                    },
                                );
                                finalized -= 1;
                                continue;
                            }
                            if d.duplicate {
                                clean.push(frag.clone());
                            }
                            clean.push(frag);
                        }
                        clean
                    }
                    _ => frags,
                };
                if frags.is_empty() {
                    continue;
                }
                if !latency.is_zero() {
                    // Every fragment still pays the wire latency; a batch
                    // pays it as one sleep instead of N.
                    std::thread::sleep(latency * frags.len() as u32);
                }
                let (n, nack_count) = deliver_many(
                    &shared,
                    &mut cache,
                    dest,
                    &frags,
                    &nacks,
                    &mut scratch_nacks,
                );
                delivered += n;
                if let Some(pn) = notify {
                    pn.fragments_done(finalized, nack_count > 0);
                }
            }
        }
    }
    delivered
}

impl AsyncNetwork {
    /// Build a network with a single wire worker that adds `latency` before
    /// each fragment's delivery (pass `Duration::ZERO` for none).
    pub fn new(mtu: usize, order: DeliveryOrder, latency: Duration) -> AsyncNetwork {
        Self::with_options(mtu, order, latency, 1)
    }

    /// Build a network with an explicit wire-worker count. Fragments shard
    /// across workers by destination mailbox (see the module docs);
    /// `workers` is clamped to at least 1.
    pub fn with_options(
        mtu: usize,
        order: DeliveryOrder,
        latency: Duration,
        workers: usize,
    ) -> AsyncNetwork {
        Self::build(mtu, order, latency, workers, EndpointConfig::default())
    }

    /// Build a network shaped by an endpoint configuration: worker count
    /// from [`wire_workers`](EndpointConfig::wire_workers), endpoints
    /// created with the config (dedup window included), and — when
    /// [`fault_model`](EndpointConfig::fault_model) is non-trivial — the
    /// wire workers turned into lossy links with link-level retransmission
    /// bounded by [`retry_budget`](EndpointConfig::retry_budget) (see the
    /// module docs).
    pub fn for_endpoint_config(
        mtu: usize,
        order: DeliveryOrder,
        latency: Duration,
        config: &EndpointConfig,
    ) -> AsyncNetwork {
        Self::build(mtu, order, latency, config.wire_workers, config.clone())
    }

    fn build(
        mtu: usize,
        order: DeliveryOrder,
        latency: Duration,
        workers: usize,
        endpoint_config: EndpointConfig,
    ) -> AsyncNetwork {
        assert!(mtu > 0, "MTU must be positive");
        let workers = workers.max(1);
        let seed = match order {
            DeliveryOrder::OutOfOrder { seed } => seed,
            DeliveryOrder::InOrder => 0,
        };
        let ring_stats = Arc::new(RingStats::default());
        let queues: Vec<Arc<RingQueue<WireMsg>>> = (0..workers)
            .map(|_| {
                Arc::new(RingQueue::with_stats(
                    endpoint_config.wire_queue_cap,
                    ring_stats.clone(),
                ))
            })
            .collect();
        let faults = (!endpoint_config.fault_model.is_none()).then(|| FaultPlan {
            model: endpoint_config.fault_model,
            budget: endpoint_config.retry_budget.max(1),
            seed: endpoint_config.fault_seed,
            stats: Arc::new(FaultStats::default()),
            pending_retries: AtomicU64::new(0),
        });
        let telemetry = endpoint_config
            .telemetry
            .then(|| Arc::new(Telemetry::new()));
        let shared = Arc::new(Shared {
            endpoints: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(1),
            mtu,
            order,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queues,
            ring_stats,
            endpoint_config,
            faults,
            telemetry,
        });
        let workers = (0..shared.queues.len())
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rvma-wire-{i}"))
                    .spawn(move || wire_worker(shared, i, latency))
                    .expect("spawn wire worker")
            })
            .collect();
        AsyncNetwork { shared, workers }
    }

    /// Default: in-order, default MTU, zero added latency, one worker.
    pub fn default_network() -> AsyncNetwork {
        AsyncNetwork::new(DEFAULT_MTU, DeliveryOrder::InOrder, Duration::ZERO)
    }

    /// Number of wire workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Create and attach an endpoint at `addr`, configured with the
    /// network's endpoint configuration (so e.g. a
    /// [`dedup_window`](EndpointConfig::dedup_window) set on the config
    /// passed to [`for_endpoint_config`](AsyncNetwork::for_endpoint_config)
    /// applies to every endpoint of the network).
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::with_config(addr, self.shared.endpoint_config.clone());
        ep.attach_wire_stats(self.shared.ring_stats.clone());
        if let Some(t) = &self.shared.telemetry {
            ep.attach_telemetry(t.clone());
        }
        self.shared.endpoints.write().insert(addr, ep.clone());
        self.shared.generation.fetch_add(1, Ordering::Release);
        ep
    }

    /// Attach an existing endpoint.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        endpoint.attach_wire_stats(self.shared.ring_stats.clone());
        if let Some(t) = &self.shared.telemetry {
            endpoint.attach_telemetry(t.clone());
        }
        self.shared
            .endpoints
            .write()
            .insert(endpoint.addr(), endpoint);
        self.shared.generation.fetch_add(1, Ordering::Release);
    }

    /// Detach the endpoint at `addr`. Bumps the route generation, so every
    /// initiator's cached routes to it go stale and the next submission
    /// fails fast. Fragments already queued race the removal the way they
    /// would on a real fabric: workers that process them afterwards publish
    /// asynchronous `NoSuchMailbox` NACKs.
    pub fn remove_endpoint(&self, addr: NodeAddr) -> bool {
        let removed = self.shared.endpoints.write().remove(&addr).is_some();
        if removed {
            self.shared.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// An asynchronous initiator bound to `src`.
    pub fn initiator(&self, src: NodeAddr) -> AsyncInitiator {
        AsyncInitiator {
            shared: self.shared.clone(),
            src,
            next_op: AtomicU64::new(1),
            nacks: Arc::new(Mutex::new(Vec::new())),
            routes: RouteCache::new(),
            route_hits: AtomicU64::new(0),
            route_misses: AtomicU64::new(0),
            pool: PayloadPool::new(),
            staged: AtomicU64::new(0),
        }
    }

    /// Block until every fragment submitted so far has been delivered:
    /// a flush barrier is broadcast to every worker queue (each is FIFO,
    /// so the ack implies everything ahead of it was processed). With
    /// fault injection active the barrier repeats until no link-level
    /// retransmission is pending — a faulted fragment's retries land
    /// *behind* the first barrier, and only the pending-retry count (held
    /// non-zero from before each re-enqueue until the retried copy is
    /// fully processed) proves they are done.
    pub fn quiesce(&self) {
        quiesce_shared(&self.shared);
    }

    /// The network-wide fault counters, when fault injection is active.
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.shared.faults.as_ref().map(|p| p.stats.clone())
    }

    /// The network-wide telemetry recorder, when
    /// [`EndpointConfig::telemetry`] is enabled. Drain it with
    /// [`Telemetry::snapshot`] after a [`quiesce`](AsyncNetwork::quiesce).
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.shared.telemetry.clone()
    }

    /// Point-in-time wire-queue counters (high-water ring depth,
    /// backpressure stalls, park wakeups), aggregated across the pool's
    /// rings. The same counters are merged into each attached endpoint's
    /// [`StatsSnapshot`](crate::endpoint::StatsSnapshot).
    pub fn queue_stats(&self) -> RingStatsSnapshot {
        self.shared.ring_stats.snapshot()
    }
}

impl Drop for AsyncNetwork {
    fn drop(&mut self) {
        // A Stop marker lands behind all previously queued traffic on each
        // FIFO ring, so every shard drains fully before its worker exits.
        for q in &self.shared.queues {
            let _ = q.push(WireMsg::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Only now close the rings: a submitter racing this drop stops
        // blocking on the (now consumer-less) ring and fails fast.
        for q in &self.shared.queues {
            q.close();
        }
    }
}

/// Asynchronous initiator handle.
///
/// Thread-safe; a single initiator shared across threads funnels all its
/// NACKs into one [`take_nacks`](AsyncInitiator::take_nacks) sink.
pub struct AsyncInitiator {
    shared: Arc<Shared>,
    src: NodeAddr,
    next_op: AtomicU64,
    nacks: NackSink,
    routes: RouteCache,
    route_hits: AtomicU64,
    route_misses: AtomicU64,
    pool: PayloadPool,
    /// Payload bytes copied into staging storage (pool acquisitions) on
    /// the eager path; the zero-copy lane contributes nothing here. See
    /// [`Transport::staged_bytes`](crate::transport::Transport::staged_bytes).
    staged: AtomicU64,
}

impl AsyncInitiator {
    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.src
    }

    /// Resolve the worker queue for (dest, vaddr).
    ///
    /// Steady state is the lock-free cache hit. A miss (cold route, or the
    /// endpoint generation moved) checks that `dest` exists — under the
    /// endpoint table's read lock, once — so an unknown destination still
    /// fails fast. That check is advisory, not load-bearing: an endpoint
    /// removed *after* it (or after a hit) is caught by the wire worker,
    /// which publishes an asynchronous `NoSuchMailbox` NACK. Correctness
    /// never depends on the initiator-side existence check.
    fn resolve_route(&self, dest: NodeAddr, vaddr: VirtAddr) -> Result<usize> {
        let packed = pack_addr(dest);
        let generation = self.shared.generation.load(Ordering::Acquire);
        let slot = self.routes.slot(packed, vaddr.raw());
        if let Some(queue) = slot.read(packed, vaddr.raw(), generation) {
            self.route_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(queue);
        }
        self.route_misses.fetch_add(1, Ordering::Relaxed);
        if self.shared.endpoints.read().get(&dest).is_none() {
            return Err(RvmaError::UnknownDestination);
        }
        let queue = self.shared.queue_index(dest, vaddr);
        slot.publish(packed, vaddr.raw(), generation, queue);
        Ok(queue)
    }

    /// Asynchronous `RVMA_Put` at offset 0: enqueue and return. Delivery,
    /// counting, and completion happen on a wire worker.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Asynchronous `RVMA_Put` with an explicit buffer offset. All
    /// fragments of the put target one mailbox, hence one worker queue:
    /// submission order is preserved end-to-end unless the network itself
    /// is configured `OutOfOrder`.
    ///
    /// Steady state (warm route cache, warm payload pool) acquires no
    /// `RwLock` and performs no heap allocation beyond the pooled payload
    /// copy; a put of at most one MTU additionally skips the fragment
    /// vector entirely and crosses the ring as a single message.
    ///
    /// If the destination shard's ring is full, the submission **blocks**
    /// (spin, then yield) until the wire worker frees a slot — the
    /// backpressure contract of the module docs. It never drops.
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        self.submit(dest, vaddr, offset, data, None)
    }

    /// Notified put at offset 0: flag-the-future and data in one
    /// submission. See [`put_notify_at`](AsyncInitiator::put_notify_at).
    pub fn put_notify(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<PutFuture> {
        self.put_notify_at(dest, vaddr, 0, data)
    }

    /// Asynchronous `RVMA_Put` that returns a [`PutFuture`] resolving when
    /// every fragment of **this** put reaches its final wire disposition
    /// (delivered to the destination endpoint, or NACKed). One extra `Arc`
    /// rides the put's single wire message; the submission path is
    /// otherwise identical to [`put_at`](AsyncInitiator::put_at), and the
    /// completion side is a lock-free countdown + waker handoff — no
    /// condvar, no spinning.
    pub fn put_notify_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<PutFuture> {
        let fragments = if data.len() <= self.shared.mtu {
            1
        } else {
            data.len().div_ceil(self.shared.mtu) as u64
        };
        let notify = PutNotify::new(fragments);
        self.submit(dest, vaddr, offset, data, Some(notify.clone()))?;
        Ok(PutFuture { notify, fragments })
    }

    /// `RVMA_Put` of an owned payload with a size-adaptive lane choice.
    ///
    /// At or below the endpoint config's `eager_threshold` this behaves
    /// exactly like [`put_at`](AsyncInitiator::put_at): the payload is
    /// copied into pooled staging storage and the caller's `Bytes` is
    /// dropped. Above the threshold the put goes **zero-copy**: every
    /// fragment is an offset/len slice of `data`'s shared allocation, no
    /// staging copy is made, and the receiver-side gather into the posted
    /// window buffer is the put's only copy (so the transport's
    /// copies-per-byte on this lane is exactly 1).
    pub fn put_bytes_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<()> {
        if data.len() <= self.shared.endpoint_config.eager_threshold {
            return self.submit(dest, vaddr, offset, &data, None);
        }
        self.submit_shared(dest, vaddr, offset, data, None)
    }

    /// Notified zero-copy put: [`put_bytes_at`](AsyncInitiator::put_bytes_at)
    /// returning a [`PutFuture`] that resolves when every fragment reaches
    /// its final wire disposition.
    pub fn put_bytes_notify_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<PutFuture> {
        let fragments = if data.len() <= self.shared.mtu {
            1
        } else {
            data.len().div_ceil(self.shared.mtu) as u64
        };
        let notify = PutNotify::new(fragments);
        if data.len() <= self.shared.endpoint_config.eager_threshold {
            self.submit(dest, vaddr, offset, &data, Some(notify.clone()))?;
        } else {
            self.submit_shared(dest, vaddr, offset, data, Some(notify.clone()))?;
        }
        Ok(PutFuture { notify, fragments })
    }

    /// Zero-copy submission: fragments carry slices of the caller's
    /// shared allocation instead of pooled copies. Mirrors
    /// [`submit`](AsyncInitiator::submit) in every other respect
    /// (routing, telemetry, shuffle, backpressure).
    fn submit_shared(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        payload: Bytes,
        notify: Option<Arc<PutNotify>>,
    ) -> Result<()> {
        let queue_idx = self.resolve_route(dest, vaddr)?;
        let queue = &self.shared.queues[queue_idx];
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(self.src.nid, self.src.pid);
        telemetry::record(
            &self.shared.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            payload.len() as u64,
        );
        let mtu = self.shared.mtu;
        if payload.len() <= mtu {
            let frag = Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: payload.len() as u64,
                offset,
                data: payload,
            };
            queue
                .push(WireMsg::Deliver {
                    dest,
                    frag,
                    nacks: self.nacks.clone(),
                    attempt: 0,
                    notify,
                })
                .map_err(|_| RvmaError::UnknownDestination)?;
            telemetry::record(
                &self.shared.telemetry,
                EventKind::RingEnqueue,
                src_key,
                op_id,
                queue_idx as u64,
            );
            return Ok(());
        }
        let total = payload.len() as u64;
        let mut frags: Vec<Fragment> = (0..payload.len())
            .step_by(mtu)
            .map(|start| {
                let end = (start + mtu).min(payload.len());
                Fragment {
                    initiator: self.src,
                    op_id,
                    dst_vaddr: vaddr,
                    op_total_len: total,
                    offset: offset + start,
                    data: payload.slice(start..end),
                }
            })
            .collect();
        if let DeliveryOrder::OutOfOrder { .. } = self.shared.order {
            frags.shuffle(&mut *self.shared.rng.lock());
        }
        queue
            .push(WireMsg::DeliverBatch {
                dest,
                frags,
                nacks: self.nacks.clone(),
                notify,
            })
            .map_err(|_| RvmaError::UnknownDestination)?;
        telemetry::record(
            &self.shared.telemetry,
            EventKind::RingEnqueue,
            src_key,
            op_id,
            queue_idx as u64,
        );
        Ok(())
    }

    fn submit(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
        notify: Option<Arc<PutNotify>>,
    ) -> Result<()> {
        let queue_idx = self.resolve_route(dest, vaddr)?;
        let queue = &self.shared.queues[queue_idx];
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(self.src.nid, self.src.pid);
        telemetry::record(
            &self.shared.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            data.len() as u64,
        );
        let mtu = self.shared.mtu;
        // One `nacks` Arc clone per submission (it used to be one per
        // fragment): the Arc travels with the message because the wire
        // worker that eventually discards a fragment must publish the NACK
        // into *this* initiator's sink without holding any reference to
        // the initiator itself, which may be long gone by delivery time.
        if data.len() <= mtu {
            // Inline fast path: one fragment, no fragment vector, no
            // shuffle. Zero-length puts take this path too.
            self.staged.fetch_add(data.len() as u64, Ordering::Relaxed);
            let frag = Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: data.len() as u64,
                offset,
                data: self.pool.acquire(data),
            };
            queue
                .push(WireMsg::Deliver {
                    dest,
                    frag,
                    nacks: self.nacks.clone(),
                    attempt: 0,
                    notify: notify.clone(),
                })
                .map_err(|_| RvmaError::UnknownDestination)?;
            telemetry::record(
                &self.shared.telemetry,
                EventKind::RingEnqueue,
                src_key,
                op_id,
                queue_idx as u64,
            );
            return Ok(());
        }
        let frags = self.fragment(vaddr, op_id, offset, data);
        queue
            .push(WireMsg::DeliverBatch {
                dest,
                frags,
                nacks: self.nacks.clone(),
                notify: notify.clone(),
            })
            .map_err(|_| RvmaError::UnknownDestination)?;
        telemetry::record(
            &self.shared.telemetry,
            EventKind::RingEnqueue,
            src_key,
            op_id,
            queue_idx as u64,
        );
        Ok(())
    }

    /// Split a multi-MTU payload into fragments (pooled copy, zero-copy
    /// slices), shuffled when the network is `OutOfOrder`.
    fn fragment(&self, vaddr: VirtAddr, op_id: u64, offset: usize, data: &[u8]) -> Vec<Fragment> {
        self.staged.fetch_add(data.len() as u64, Ordering::Relaxed);
        let payload = self.pool.acquire(data);
        let total = payload.len() as u64;
        let mtu = self.shared.mtu;
        let mut frags: Vec<Fragment> = (0..payload.len())
            .step_by(mtu)
            .map(|start| {
                let end = (start + mtu).min(payload.len());
                Fragment {
                    initiator: self.src,
                    op_id,
                    dst_vaddr: vaddr,
                    op_total_len: total,
                    offset: offset + start,
                    data: payload.slice(start..end),
                }
            })
            .collect();
        if let DeliveryOrder::OutOfOrder { .. } = self.shared.order {
            frags.shuffle(&mut *self.shared.rng.lock());
        }
        frags
    }

    /// The seed/PR-1 submission path, kept verbatim for A/B benchmarking
    /// (`msg_rate --bin`): endpoint-table read lock per put, fresh payload
    /// allocation, a fragment vector even for single-fragment puts, and
    /// one channel send + one NACK-sink Arc clone *per fragment*.
    pub fn put_at_legacy(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        if self.shared.endpoints.read().get(&dest).is_none() {
            return Err(RvmaError::UnknownDestination);
        }
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(self.src.nid, self.src.pid);
        telemetry::record(
            &self.shared.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            data.len() as u64,
        );
        self.staged.fetch_add(data.len() as u64, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;
        let mtu = self.shared.mtu;

        let mut frags: Vec<Fragment> = if payload.is_empty() {
            vec![Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: 0,
                offset,
                data: payload.clone(),
            }]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|start| {
                    let end = (start + mtu).min(payload.len());
                    Fragment {
                        initiator: self.src,
                        op_id,
                        dst_vaddr: vaddr,
                        op_total_len: total,
                        offset: offset + start,
                        data: payload.slice(start..end),
                    }
                })
                .collect()
        };
        if let DeliveryOrder::OutOfOrder { .. } = self.shared.order {
            frags.shuffle(&mut *self.shared.rng.lock());
        }
        let queue_idx = self.shared.queue_index(dest, vaddr);
        let queue = &self.shared.queues[queue_idx];
        for frag in frags {
            queue
                .push(WireMsg::Deliver {
                    dest,
                    frag,
                    nacks: self.nacks.clone(),
                    attempt: 0,
                    notify: None,
                })
                .map_err(|_| RvmaError::UnknownDestination)?;
        }
        telemetry::record(
            &self.shared.telemetry,
            EventKind::RingEnqueue,
            src_key,
            op_id,
            queue_idx as u64,
        );
        Ok(())
    }

    /// Start a submission batch with the default doorbell threshold
    /// ([`DEFAULT_DOORBELL_FRAGS`] pending fragments).
    pub fn batch(&self) -> PutBatch<'_> {
        self.batch_with(DEFAULT_DOORBELL_FRAGS)
    }

    /// Start a submission batch that auto-flushes once `doorbell_frags`
    /// fragments are pending (clamped to at least 1).
    pub fn batch_with(&self, doorbell_frags: usize) -> PutBatch<'_> {
        PutBatch {
            init: self,
            groups: Vec::new(),
            memo: None,
            pending: 0,
            doorbell: doorbell_frags.max(1),
        }
    }

    /// Drain the asynchronous NACK notifications received so far.
    pub fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.nacks.lock())
    }

    /// Route-cache counters (hits resolve with no lock and no rehash).
    pub fn route_stats(&self) -> RouteStats {
        RouteStats {
            hits: self.route_hits.load(Ordering::Relaxed),
            misses: self.route_misses.load(Ordering::Relaxed),
        }
    }

    /// Payload-pool counters (hits reuse a retired allocation).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Total payload bytes this initiator copied into staging storage
    /// (eager-lane pool acquisitions); the zero-copy lane adds nothing.
    pub fn staged_bytes(&self) -> u64 {
        self.staged.load(Ordering::Relaxed)
    }
}

impl crate::transport::Transport for AsyncInitiator {
    fn backend(&self) -> &'static str {
        "threaded"
    }

    fn put_at(&self, dest: NodeAddr, vaddr: VirtAddr, offset: usize, data: &[u8]) -> Result<()> {
        AsyncInitiator::put_at(self, dest, vaddr, offset, data)
    }

    fn put_bytes_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<()> {
        AsyncInitiator::put_bytes_at(self, dest, vaddr, offset, data)
    }

    fn flush(&self) -> Result<()> {
        quiesce_shared(&self.shared);
        Ok(())
    }

    fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        AsyncInitiator::take_nacks(self)
    }

    fn staged_bytes(&self) -> u64 {
        AsyncInitiator::staged_bytes(self)
    }
}

/// A coalescing submission batch (the software doorbell).
///
/// Puts append fragments to per-(worker shard, destination) groups held in
/// the batch; nothing crosses a channel until [`flush`](PutBatch::flush)
/// is called or the pending-fragment count reaches the doorbell
/// threshold, at which point each group crosses as **one**
/// `DeliverBatch` message. Dropping the batch flushes it.
///
/// Ordering: fragments for one mailbox are delivered in the order they
/// were appended, but a batch is its own submission stream — puts issued
/// directly on the initiator while a batch holds undelivered fragments
/// for the same mailbox may be delivered ahead of them.
pub struct PutBatch<'a> {
    init: &'a AsyncInitiator,
    /// (queue index, destination, fragments) groups; linear scan — a
    /// batch rarely targets more than a handful of destinations.
    groups: Vec<(usize, NodeAddr, Vec<Fragment>)>,
    /// Last (dest, vaddr) resolved → (generation, queue, group index).
    /// Messaging loops hammer one route; the memo skips even the route
    /// cache and the group scan on consecutive same-route puts.
    memo: Option<(NodeAddr, VirtAddr, u64, usize, usize)>,
    pending: usize,
    doorbell: usize,
}

impl PutBatch<'_> {
    /// Append a put at offset 0 to the batch.
    pub fn put(&mut self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Append a put to the batch; auto-flushes at the doorbell threshold.
    pub fn put_at(
        &mut self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        let generation = self.init.shared.generation.load(Ordering::Acquire);
        let group_idx = match self.memo {
            Some((d, v, g, _, gi)) if d == dest && v == vaddr && g == generation => gi,
            _ => {
                let queue_idx = self.init.resolve_route(dest, vaddr)?;
                let gi = match self
                    .groups
                    .iter()
                    .position(|(q, d, _)| *q == queue_idx && *d == dest)
                {
                    Some(i) => i,
                    None => {
                        self.groups.push((queue_idx, dest, Vec::new()));
                        self.groups.len() - 1
                    }
                };
                self.memo = Some((dest, vaddr, generation, queue_idx, gi));
                gi
            }
        };
        let op_id = self.init.next_op.fetch_add(1, Ordering::Relaxed);
        telemetry::record(
            &self.init.shared.telemetry,
            EventKind::Submit,
            telemetry::initiator_key(self.init.src.nid, self.init.src.pid),
            op_id,
            data.len() as u64,
        );
        let group = &mut self.groups[group_idx].2;
        if data.len() <= self.init.shared.mtu {
            self.init
                .staged
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            group.push(Fragment {
                initiator: self.init.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: data.len() as u64,
                offset,
                data: self.init.pool.acquire(data),
            });
            self.pending += 1;
        } else {
            let mut frags = self.init.fragment(vaddr, op_id, offset, data);
            self.pending += frags.len();
            group.append(&mut frags);
        }
        if self.pending >= self.doorbell {
            self.flush()?;
        }
        Ok(())
    }

    /// Fragments appended and not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Ring the doorbell: every non-empty group crosses its worker queue
    /// as a single `DeliverBatch` message (one NACK-sink Arc clone each).
    pub fn flush(&mut self) -> Result<()> {
        self.pending = 0;
        let mut result = Ok(());
        let doorbell = self.doorbell;
        for (queue_idx, dest, frags) in &mut self.groups {
            if frags.is_empty() {
                continue;
            }
            // Replace with a pre-sized vector: the group refills to the
            // doorbell threshold, and regrowing from empty would pay
            // several reallocations per batch.
            let batch = std::mem::replace(frags, Vec::with_capacity(doorbell));
            // One RingEnqueue per op: a multi-fragment op's fragments sit
            // contiguously in the group, so deduping consecutive op ids
            // yields exactly one event per put crossing the ring.
            if self.init.shared.telemetry.is_some() {
                let mut last = None;
                for f in &batch {
                    let key = telemetry::initiator_key(f.initiator.nid, f.initiator.pid);
                    if last != Some((key, f.op_id)) {
                        telemetry::record(
                            &self.init.shared.telemetry,
                            EventKind::RingEnqueue,
                            key,
                            f.op_id,
                            *queue_idx as u64,
                        );
                        last = Some((key, f.op_id));
                    }
                }
            }
            let sent = self.init.shared.queues[*queue_idx].push(WireMsg::DeliverBatch {
                dest: *dest,
                frags: batch,
                nacks: self.init.nacks.clone(),
                notify: None,
            });
            if sent.is_err() && result.is_ok() {
                result = Err(RvmaError::UnknownDestination);
            }
        }
        result
    }
}

impl Drop for PutBatch<'_> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::mailbox::MailboxMode;

    #[test]
    fn async_put_completes_cross_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 4096]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[3; 4096])
            .unwrap();
        // The caller returned before delivery; wait() parks until the wire
        // worker's completing write.
        let buf = note.wait();
        assert_eq!(buf.data(), vec![3u8; 4096].as_slice());
    }

    #[test]
    fn out_of_order_async_delivery_is_correct() {
        let net = AsyncNetwork::new(64, DeliveryOrder::OutOfOrder { seed: 3 }, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::bytes(1024))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 1024]).unwrap();
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 250) as u8).collect();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &payload)
            .unwrap();
        assert_eq!(note.wait().data(), payload.as_slice());
    }

    #[test]
    fn nacks_arrive_asynchronously() {
        let net = AsyncNetwork::default_network();
        let _server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        client
            .put(NodeAddr::node(1), VirtAddr::new(99), &[0; 8])
            .unwrap(); // returns Ok: the NACK is asynchronous
        net.quiesce();
        let nacks = client.take_nacks();
        assert_eq!(nacks, vec![(VirtAddr::new(99), NackReason::NoSuchMailbox)]);
        assert!(client.take_nacks().is_empty(), "drained");
    }

    #[test]
    fn unknown_destination_fails_fast() {
        let net = AsyncNetwork::default_network();
        let client = net.initiator(NodeAddr::node(2));
        assert_eq!(
            client.put(NodeAddr::node(9), VirtAddr::new(1), &[0; 8]),
            Err(RvmaError::UnknownDestination)
        );
    }

    #[test]
    fn added_latency_delays_completion() {
        let net = AsyncNetwork::new(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_millis(10),
        );
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let t0 = std::time::Instant::now();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 64])
            .unwrap();
        let submitted = t0.elapsed();
        let _ = note.wait();
        let completed = t0.elapsed();
        assert!(submitted < Duration::from_millis(5), "put must not block");
        assert!(completed >= Duration::from_millis(10));
    }

    #[test]
    fn many_async_senders() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64 * 16]).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let init = net.initiator(NodeAddr::node(t + 1));
                s.spawn(move || {
                    for k in 0..8usize {
                        init.put_at(
                            NodeAddr::node(0),
                            VirtAddr::new(1),
                            (t as usize * 8 + k) * 16,
                            &[t as u8 + 1; 16],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let buf = note.wait();
        assert_eq!(buf.len(), 64 * 16);
        for t in 0..8usize {
            assert_eq!(buf.full_buffer()[t * 8 * 16], t as u8 + 1);
        }
    }

    #[test]
    fn drop_joins_wire_thread() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let _note = win.post_buffer(vec![0; 8]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[1; 8])
            .unwrap();
        drop(net); // must not hang
    }

    #[test]
    fn worker_pool_fans_out_incast() {
        // 8 senders to 8 disjoint mailboxes through a 4-worker pool; every
        // epoch completes with the right bytes.
        let net = AsyncNetwork::with_options(64, DeliveryOrder::InOrder, Duration::ZERO, 4);
        assert_eq!(net.worker_count(), 4);
        let server = net.add_endpoint(NodeAddr::node(0));
        let mut notes = Vec::new();
        for i in 0..8u64 {
            let win = server
                .init_window(VirtAddr::new(i), Threshold::bytes(1024))
                .unwrap();
            notes.push(win.post_buffer(vec![0; 1024]).unwrap());
        }
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let init = net.initiator(NodeAddr::node(i as u32 + 1));
                s.spawn(move || {
                    init.put(NodeAddr::node(0), VirtAddr::new(i), &[i as u8 + 1; 1024])
                        .unwrap();
                });
            }
        });
        for (i, n) in notes.iter_mut().enumerate() {
            assert_eq!(n.wait().data(), vec![i as u8 + 1; 1024].as_slice());
        }
        assert_eq!(server.stats().epochs_completed, 8);
    }

    #[test]
    fn worker_pool_preserves_per_mailbox_ordering() {
        // A Managed (cursor-append) mailbox is the strictest ordering
        // consumer: bytes must land in submission order. Eight workers must
        // not reorder one mailbox's stream, because all its fragments hash
        // to one FIFO queue.
        let net = AsyncNetwork::with_options(16, DeliveryOrder::InOrder, Duration::ZERO, 8);
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window_mode(
                VirtAddr::new(7),
                Threshold::bytes(256),
                MailboxMode::Managed,
            )
            .unwrap();
        let mut note = win.post_buffer(vec![0; 256]).unwrap();
        let expected: Vec<u8> = (0..=255u8).collect();
        // 16 puts of 16 bytes each; each put further fragments at MTU 16.
        for chunk in expected.chunks(16) {
            client
                .put(NodeAddr::node(1), VirtAddr::new(7), chunk)
                .unwrap();
        }
        assert_eq!(note.wait().data(), expected.as_slice());
    }

    #[test]
    fn quiesce_flushes_every_worker_queue() {
        let net = AsyncNetwork::with_options(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_micros(200),
            4,
        );
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(9));
        // One put per mailbox so traffic lands on several queues.
        for i in 0..8u64 {
            let win = server
                .init_window(VirtAddr::new(i), Threshold::bytes(32))
                .unwrap();
            let _ = win.post_buffer(vec![0; 32]).unwrap();
            client
                .put(NodeAddr::node(0), VirtAddr::new(i), &[1; 32])
                .unwrap();
        }
        net.quiesce();
        assert_eq!(server.stats().epochs_completed, 8);
    }

    #[test]
    fn drop_drains_all_shard_queues() {
        // Queue traffic across a 4-worker pool, then drop immediately: the
        // Stop markers sit behind the traffic, so every fragment still
        // delivers before the workers exit.
        let server;
        {
            let net = AsyncNetwork::with_options(
                DEFAULT_MTU,
                DeliveryOrder::InOrder,
                Duration::from_micros(100),
                4,
            );
            server = net.add_endpoint(NodeAddr::node(0));
            let client = net.initiator(NodeAddr::node(9));
            for i in 0..8u64 {
                let win = server
                    .init_window(VirtAddr::new(i), Threshold::bytes(16))
                    .unwrap();
                let _ = win.post_buffer(vec![0; 16]).unwrap();
                client
                    .put(NodeAddr::node(0), VirtAddr::new(i), &[2; 16])
                    .unwrap();
            }
            // net dropped here with fragments still queued.
        }
        assert_eq!(server.stats().epochs_completed, 8);
    }

    #[test]
    fn route_cache_steady_state_is_lockless_and_pooled() {
        // After one warm-up put, every subsequent put to the same route is
        // a cache hit, and (with deliveries drained between puts) every
        // payload copy is a pool hit.
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(5), Threshold::ops(1))
            .unwrap();
        let mut notes = win.post_buffers(vec![vec![0; 64]; 17]).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(5), &[0; 64])
            .unwrap();
        net.quiesce();
        for k in 0..16u8 {
            client
                .put(NodeAddr::node(1), VirtAddr::new(5), &[k; 64])
                .unwrap();
            net.quiesce();
        }
        let routes = client.route_stats();
        assert_eq!(routes.misses, 1, "only the cold put misses");
        assert_eq!(routes.hits, 16);
        let pool = client.pool_stats();
        assert_eq!(pool.misses, 1, "only the cold put allocates");
        assert_eq!(pool.hits, 16);
        assert_eq!(pool.hit_rate() + routes.hit_rate(), 2.0 * 16.0 / 17.0);
        for n in notes.iter_mut() {
            assert_eq!(n.wait().len(), 64);
        }
    }

    #[test]
    fn route_cache_invalidated_by_endpoint_removal() {
        let net = AsyncNetwork::default_network();
        let _server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        client
            .put(NodeAddr::node(1), VirtAddr::new(7), &[0; 8])
            .unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(7), &[0; 8])
            .unwrap();
        assert_eq!(client.route_stats().hits, 1, "route cached");
        assert!(net.remove_endpoint(NodeAddr::node(1)));
        assert!(!net.remove_endpoint(NodeAddr::node(1)), "already gone");
        // The generation bump makes the cached route stale: the put misses,
        // re-checks the table, and fails fast.
        assert_eq!(
            client.put(NodeAddr::node(1), VirtAddr::new(7), &[0; 8]),
            Err(RvmaError::UnknownDestination)
        );
        assert_eq!(client.route_stats().misses, 2);
    }

    #[test]
    fn batch_coalesces_and_flushes_explicitly() {
        let net = AsyncNetwork::with_options(64, DeliveryOrder::InOrder, Duration::ZERO, 4);
        let server = net.add_endpoint(NodeAddr::node(0));
        let mut notes = Vec::new();
        for i in 0..4u64 {
            let win = server
                .init_window(VirtAddr::new(i), Threshold::ops(4))
                .unwrap();
            notes.push(win.post_buffer(vec![0; 256]).unwrap());
        }
        let client = net.initiator(NodeAddr::node(9));
        let mut batch = client.batch();
        for k in 0..4usize {
            for i in 0..4u64 {
                batch
                    .put_at(
                        NodeAddr::node(0),
                        VirtAddr::new(i),
                        k * 16,
                        &[i as u8 + 1; 16],
                    )
                    .unwrap();
            }
        }
        assert_eq!(batch.pending(), 16, "nothing crossed before the doorbell");
        batch.flush().unwrap();
        assert_eq!(batch.pending(), 0);
        for (i, n) in notes.iter_mut().enumerate() {
            let buf = n.wait();
            assert_eq!(buf.data()[..16], [i as u8 + 1; 16]);
        }
        assert_eq!(server.stats().epochs_completed, 4);
    }

    #[test]
    fn batch_auto_flushes_at_doorbell_threshold() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(4))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let client = net.initiator(NodeAddr::node(9));
        let mut batch = client.batch_with(4);
        for k in 0..3usize {
            batch
                .put_at(NodeAddr::node(0), VirtAddr::new(1), k * 16, &[7; 16])
                .unwrap();
        }
        assert_eq!(batch.pending(), 3);
        batch
            .put_at(NodeAddr::node(0), VirtAddr::new(1), 48, &[7; 16])
            .unwrap();
        assert_eq!(batch.pending(), 0, "doorbell rang at 4 fragments");
        assert_eq!(note.wait().data(), vec![7; 64].as_slice());
    }

    #[test]
    fn batch_drop_flushes_pending_puts() {
        let net = AsyncNetwork::default_network();
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(2))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 32]).unwrap();
        let client = net.initiator(NodeAddr::node(9));
        {
            let mut batch = client.batch();
            batch
                .put_at(NodeAddr::node(0), VirtAddr::new(1), 0, &[1; 16])
                .unwrap();
            batch
                .put_at(NodeAddr::node(0), VirtAddr::new(1), 16, &[2; 16])
                .unwrap();
            // Dropped with 2 pending fragments.
        }
        assert_eq!(note.wait().len(), 32);
    }

    #[test]
    fn batch_multi_fragment_puts_and_nacks() {
        // A batched multi-MTU put fragments correctly, and batched NACKs
        // (missing mailbox) all surface, one sink lock per batch.
        let net = AsyncNetwork::new(16, DeliveryOrder::InOrder, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::bytes(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let client = net.initiator(NodeAddr::node(9));
        let payload: Vec<u8> = (0..64u8).collect();
        let mut batch = client.batch();
        batch
            .put(NodeAddr::node(0), VirtAddr::new(1), &payload)
            .unwrap();
        batch
            .put(NodeAddr::node(0), VirtAddr::new(99), &[0; 32])
            .unwrap();
        batch.flush().unwrap();
        net.quiesce();
        assert_eq!(note.wait().data(), payload.as_slice());
        let nacks = client.take_nacks();
        assert_eq!(nacks.len(), 2, "one NACK per missing-mailbox fragment");
        assert!(nacks
            .iter()
            .all(|(va, r)| *va == VirtAddr::new(99) && *r == NackReason::NoSuchMailbox));
    }

    #[test]
    fn batch_to_unknown_destination_fails_fast() {
        let net = AsyncNetwork::default_network();
        let client = net.initiator(NodeAddr::node(2));
        let mut batch = client.batch();
        assert_eq!(
            batch.put(NodeAddr::node(9), VirtAddr::new(1), &[0; 8]),
            Err(RvmaError::UnknownDestination)
        );
    }

    #[test]
    fn take_nacks_observes_all_shards_exactly_once() {
        // Concurrent failing puts from one shared initiator, spread across
        // many mailboxes (hence many worker queues): every NACK is
        // observed, none duplicated.
        let net = AsyncNetwork::with_options(64, DeliveryOrder::InOrder, Duration::ZERO, 8);
        let _server = net.add_endpoint(NodeAddr::node(0));
        let client = Arc::new(net.initiator(NodeAddr::node(1)));
        const THREADS: u64 = 4;
        const PUTS: u64 = 32;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let client = client.clone();
                s.spawn(move || {
                    for k in 0..PUTS {
                        // Distinct vaddrs spread over the queue shards; no
                        // mailbox exists, so every put NACKs.
                        client
                            .put(NodeAddr::node(0), VirtAddr::new(t * PUTS + k), &[0; 8])
                            .unwrap();
                    }
                });
            }
        });
        net.quiesce();
        let mut nacks = client.take_nacks();
        assert_eq!(nacks.len(), (THREADS * PUTS) as usize);
        nacks.sort_by_key(|(va, _)| va.raw());
        for (i, (va, reason)) in nacks.iter().enumerate() {
            assert_eq!(va.raw(), i as u64, "every failing put NACKed once");
            assert_eq!(*reason, NackReason::NoSuchMailbox);
        }
        assert!(client.take_nacks().is_empty(), "drained");
    }

    #[test]
    fn zero_length_and_mtu_boundary_puts() {
        // step_by(mtu) boundaries through both the inline fast path
        // (len <= mtu, including len == 0) and the batched fragment path
        // (len > mtu), via put_at and via PutBatch.
        const MTU: usize = 16;
        let net = AsyncNetwork::new(MTU, DeliveryOrder::InOrder, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(9));
        let sizes = [0usize, 1, MTU - 1, MTU, MTU + 1, 2 * MTU, 2 * MTU + 1];
        for (i, &len) in sizes.iter().enumerate() {
            let vaddr = VirtAddr::new(i as u64);
            let win = server.init_window(vaddr, Threshold::ops(2)).unwrap();
            let mut note = win.post_buffer(vec![0xFF; 2 * MTU + 1]).unwrap();
            let payload: Vec<u8> = (0..len).map(|b| b as u8 + 1).collect();
            // Once directly, once through a batch.
            client
                .put_at(NodeAddr::node(0), vaddr, 0, &payload)
                .unwrap();
            let mut batch = client.batch();
            batch.put_at(NodeAddr::node(0), vaddr, 0, &payload).unwrap();
            batch.flush().unwrap();
            let buf = note.wait();
            assert_eq!(&buf.full_buffer()[..len], payload.as_slice(), "len={len}");
            assert_eq!(
                server.stats().epochs_completed,
                i as u64 + 1,
                "both ops (even zero-length) counted at len={len}"
            );
        }
        net.quiesce();
        assert!(client.take_nacks().is_empty());
    }

    #[test]
    fn exactly_mtu_put_is_single_fragment() {
        // An exactly-MTU put must take the inline path: one fragment, not
        // one full + one empty (the step_by off-by-one this test pins).
        const MTU: usize = 32;
        let net = AsyncNetwork::new(MTU, DeliveryOrder::InOrder, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(9));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::bytes(MTU as u64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; MTU]).unwrap();
        client
            .put(NodeAddr::node(0), VirtAddr::new(1), &[5; MTU])
            .unwrap();
        assert_eq!(note.wait().data(), vec![5; MTU].as_slice());
        assert_eq!(server.stats().fragments_accepted, 1);
    }

    #[test]
    fn fault_injected_network_completes_under_loss() {
        // Drops retransmit, duplicates are suppressed by the receiver's
        // dedup window, reorders arrive late but land at their offsets:
        // the epoch still completes byte-exact, and quiesce waits out
        // every pending retry.
        let config = EndpointConfig {
            dedup_window: 256,
            fault_model: FaultModel {
                drop_p: 0.2,
                dup_p: 0.1,
                reorder_p: 0.05,
                ..FaultModel::NONE
            },
            fault_seed: 42,
            wire_workers: 4,
            ..EndpointConfig::default()
        };
        let net =
            AsyncNetwork::for_endpoint_config(32, DeliveryOrder::InOrder, Duration::ZERO, &config);
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(1));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 4096]).unwrap();
        let payload: Vec<u8> = (0..4096usize).map(|i| (i % 251) as u8).collect();
        client
            .put(NodeAddr::node(0), VirtAddr::new(1), &payload)
            .unwrap();
        net.quiesce();
        assert_eq!(note.wait().data(), payload.as_slice());
        let stats = net.fault_stats().expect("faults active");
        assert!(stats.dropped() > 0, "128 fragments at 20% loss");
        assert_eq!(
            server.stats().duplicates_dropped,
            stats.duplicated(),
            "every duplicated copy was suppressed by the dedup window"
        );
        assert!(client.take_nacks().is_empty());
    }

    #[test]
    fn async_crash_fault_black_holes_the_endpoint() {
        // The 4th network-wide transmission crashes the destination: the
        // endpoint vanishes, and everything after it surfaces asynchronous
        // NoSuchMailbox NACKs (or fails fast at submission) instead of
        // hanging quiesce or teardown.
        let config = EndpointConfig {
            dedup_window: 64,
            fault_model: FaultModel {
                crash_after_frags: Some(4),
                ..FaultModel::NONE
            },
            fault_seed: 7,
            wire_workers: 1,
            ..EndpointConfig::default()
        };
        let net =
            AsyncNetwork::for_endpoint_config(16, DeliveryOrder::InOrder, Duration::ZERO, &config);
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(1));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let _note = win.post_buffer(vec![0; 256]).unwrap();
        for k in 0..16usize {
            // Submission races the crash: a put after the removal fails
            // fast, one before it is NACKed by the wire worker.
            let _ = client.put_at(
                NodeAddr::node(0),
                VirtAddr::new(1),
                k * 16,
                &[k as u8 + 1; 16],
            );
        }
        net.quiesce();
        assert_eq!(
            server.stats().fragments_accepted,
            3,
            "only the pre-crash fragments landed"
        );
        assert!(client
            .take_nacks()
            .iter()
            .all(|(_, r)| *r == NackReason::NoSuchMailbox));
    }

    #[test]
    fn zero_length_put_bypasses_async_fault_dice() {
        // A zero-length put carries no payload to corrupt: it must count
        // its op without ever touching the fault dice — even at 100% loss.
        let config = EndpointConfig {
            dedup_window: 16,
            fault_model: FaultModel {
                drop_p: 1.0,
                ..FaultModel::NONE
            },
            wire_workers: 1,
            ..EndpointConfig::default()
        };
        let net = AsyncNetwork::for_endpoint_config(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::ZERO,
            &config,
        );
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(1));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::ops(1))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 8]).unwrap();
        client
            .put(NodeAddr::node(0), VirtAddr::new(1), &[])
            .unwrap();
        net.quiesce();
        assert_eq!(note.wait().len(), 0);
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.transmitted(), 0, "the dice never rolled");
    }

    #[test]
    fn legacy_path_still_delivers() {
        // The PR-1 A/B baseline stays functional: same delivery semantics,
        // just unbatched and uncached.
        let net = AsyncNetwork::new(16, DeliveryOrder::InOrder, Duration::ZERO);
        let server = net.add_endpoint(NodeAddr::node(0));
        let client = net.initiator(NodeAddr::node(9));
        let win = server
            .init_window(VirtAddr::new(1), Threshold::bytes(64))
            .unwrap();
        let mut note = win.post_buffer(vec![0; 64]).unwrap();
        let payload: Vec<u8> = (0..64u8).collect();
        client
            .put_at_legacy(NodeAddr::node(0), VirtAddr::new(1), 0, &payload)
            .unwrap();
        assert_eq!(note.wait().data(), payload.as_slice());
        assert_eq!(
            client.put_at_legacy(NodeAddr::node(7), VirtAddr::new(1), 0, &[0; 4]),
            Err(RvmaError::UnknownDestination)
        );
    }
}
