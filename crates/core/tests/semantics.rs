//! Cross-module semantic scenarios: the paper's usage patterns exercised
//! through the public API, end to end.

use rvma_core::{
    wait_any, DeliveryOrder, EndpointConfig, EpochType, LoopbackNetwork, MailboxMode, NackReason,
    NodeAddr, RvmaEndpoint, RvmaError, Threshold, VirtAddr,
};
use std::sync::Arc;

fn net_with_target(
    order: DeliveryOrder,
) -> (
    Arc<LoopbackNetwork>,
    Arc<RvmaEndpoint>,
    rvma_core::Initiator,
) {
    let net = LoopbackNetwork::with_options(128, order);
    let target = net.add_endpoint(NodeAddr::node(0));
    let init = net.initiator(NodeAddr::node(1));
    (net, target, init)
}

#[test]
fn pipelined_epochs_with_rewind_reads() {
    // Producer streams epochs while the consumer occasionally reads
    // history — the fault-tolerance usage under steady state.
    let (_net, target, init) = net_with_target(DeliveryOrder::InOrder);
    let win = target
        .init_window(VirtAddr::new(1), Threshold::bytes(64))
        .unwrap();
    let mut notes = win.post_buffers(vec![vec![0; 64]; 8]).unwrap();
    for i in 0..8u8 {
        init.put(NodeAddr::node(0), VirtAddr::new(1), &[i + 1; 64])
            .unwrap();
        // History is readable while newer epochs stream in.
        if i >= 1 {
            let prev = win.rewind(2).unwrap();
            assert_eq!(prev.data(), vec![i; 64].as_slice());
        }
    }
    for (i, n) in notes.iter_mut().enumerate() {
        assert_eq!(n.poll().unwrap().data(), vec![i as u8 + 1; 64].as_slice());
    }
}

#[test]
fn wait_any_across_mailboxes() {
    // Fine-grained completion over two different windows on one endpoint:
    // a thread waits on exactly its chosen set.
    let (_net, target, init) = net_with_target(DeliveryOrder::InOrder);
    let w1 = target
        .init_window(VirtAddr::new(1), Threshold::bytes(16))
        .unwrap();
    let w2 = target
        .init_window(VirtAddr::new(2), Threshold::bytes(16))
        .unwrap();
    let n1 = w1.post_buffer(vec![0; 16]).unwrap();
    let n2 = w2.post_buffer(vec![0; 16]).unwrap();
    let mut set = vec![n1, n2];
    init.put(NodeAddr::node(0), VirtAddr::new(2), &[9; 16])
        .unwrap();
    let (idx, buf) = wait_any(&mut set).unwrap();
    assert_eq!(idx, 1);
    assert_eq!(buf.vaddr(), VirtAddr::new(2));
    // The other window is untouched.
    assert_eq!(w1.epoch(), 0);
    assert!(!set[0].is_consumed());
}

#[test]
fn mixed_modes_on_one_endpoint() {
    // A steered (HPC) window and a managed (sockets) window coexist.
    let (_net, target, init) = net_with_target(DeliveryOrder::InOrder);
    let hpc = target
        .init_window(VirtAddr::new(1), Threshold::bytes(32))
        .unwrap();
    let sock = target
        .init_window_mode(VirtAddr::new(2), Threshold::bytes(32), MailboxMode::Managed)
        .unwrap();
    let mut n_hpc = hpc.post_buffer(vec![0; 32]).unwrap();
    let mut n_sock = sock.post_buffer(vec![0; 32]).unwrap();

    // Steered: offsets place; send halves in reverse order.
    init.put_at(NodeAddr::node(0), VirtAddr::new(1), 16, &[2; 16])
        .unwrap();
    init.put_at(NodeAddr::node(0), VirtAddr::new(1), 0, &[1; 16])
        .unwrap();
    // Managed: cursor appends; offsets are ignored.
    init.put_at(NodeAddr::node(0), VirtAddr::new(2), 999, &[3; 16])
        .unwrap();
    init.put_at(NodeAddr::node(0), VirtAddr::new(2), 0, &[4; 16])
        .unwrap();

    let hpc_buf = n_hpc.poll().unwrap();
    assert_eq!(&hpc_buf.data()[..16], &[1; 16]);
    assert_eq!(&hpc_buf.data()[16..], &[2; 16]);
    let sock_buf = n_sock.poll().unwrap();
    assert_eq!(&sock_buf.data()[..16], &[3; 16]);
    assert_eq!(&sock_buf.data()[16..], &[4; 16]);
}

#[test]
fn close_midstream_discards_remaining_ops() {
    let (_net, target, init) = net_with_target(DeliveryOrder::InOrder);
    let win = target
        .init_window(VirtAddr::new(1), Threshold::bytes(64))
        .unwrap();
    let mut n = win.post_buffer(vec![0; 64]).unwrap();
    init.put_at(NodeAddr::node(0), VirtAddr::new(1), 0, &[1; 32])
        .unwrap();
    win.close();
    let err = init
        .put_at(NodeAddr::node(0), VirtAddr::new(1), 32, &[2; 32])
        .unwrap_err();
    assert_eq!(err, RvmaError::Nacked(NackReason::WindowClosed));
    assert!(n.poll().is_none(), "no completion after close");
    // The endpoint accounted exactly the accepted half.
    assert_eq!(target.stats().bytes_accepted, 32);
}

#[test]
fn ops_threshold_synchronization_barrier() {
    // Zero-byte puts as arrival signals: an op-counted window is a
    // receiver-side barrier over unordered delivery.
    let (_net, target, init) = net_with_target(DeliveryOrder::OutOfOrder { seed: 5 });
    let win = target
        .init_window(
            VirtAddr::new(7),
            Threshold {
                ty: EpochType::Ops,
                count: 6,
            },
        )
        .unwrap();
    let mut n = win.post_buffer(vec![0; 8]).unwrap();
    for _ in 0..5 {
        init.put(NodeAddr::node(0), VirtAddr::new(7), &[]).unwrap();
        assert!(n.poll().is_none());
    }
    let r = init.put(NodeAddr::node(0), VirtAddr::new(7), &[]).unwrap();
    assert!(r.completed_epoch);
    assert!(n.poll().is_some());
}

#[test]
fn catch_all_plus_eviction_flow() {
    // A service endpoint with a catch-all mailbox: strays land there;
    // evicting a closed window downgrades its NACK reason.
    let net = LoopbackNetwork::new();
    let target = rvma_core::RvmaEndpoint::with_config(
        NodeAddr::node(0),
        EndpointConfig {
            catch_all: Some(VirtAddr::new(0)),
            lut_capacity: Some(4),
            ..Default::default()
        },
    );
    net.register(target.clone());
    let init = net.initiator(NodeAddr::node(1));

    let catch_all = target
        .init_window(VirtAddr::new(0), Threshold::ops(1))
        .unwrap();
    let mut stray_note = catch_all.post_buffer(vec![0; 1024]).unwrap();
    // Stray put to an unregistered mailbox lands in the catch-all.
    init.put(NodeAddr::node(0), VirtAddr::new(0xDEAD), &[5; 100])
        .unwrap();
    assert_eq!(stray_note.poll().unwrap().len(), 100);

    // Fill the LUT to capacity, then evict to reclaim.
    let mut wins = Vec::new();
    for i in 1..4u64 {
        wins.push(
            target
                .init_window(VirtAddr::new(i), Threshold::ops(1))
                .unwrap(),
        );
    }
    assert_eq!(
        target
            .init_window(VirtAddr::new(9), Threshold::ops(1))
            .unwrap_err(),
        RvmaError::LutFull
    );
    wins[0].close();
    assert!(target.evict(VirtAddr::new(1)));
    let _replacement = target
        .init_window(VirtAddr::new(9), Threshold::ops(1))
        .unwrap();
}

#[test]
fn concurrent_producers_and_epoch_consumer() {
    // 4 producer threads each stream 32 messages into one mailbox; a
    // consumer thread fences epochs as they complete. End-to-end counts
    // must reconcile.
    let (net, target, _init) = net_with_target(DeliveryOrder::OutOfOrder { seed: 11 });
    let win = target
        .init_window(VirtAddr::new(1), Threshold::ops(1))
        .unwrap();
    let total = 4 * 32;
    let mut notes = win.post_buffers(vec![vec![0; 64]; total]).unwrap();

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let init = net.initiator(NodeAddr::node(t + 2));
            s.spawn(move || {
                for _ in 0..32 {
                    init.put(NodeAddr::node(0), VirtAddr::new(1), &[t as u8; 64])
                        .unwrap();
                }
            });
        }
        s.spawn(move || {
            let mut got = 0;
            for n in notes.iter_mut() {
                let _ = n.wait();
                got += 1;
            }
            assert_eq!(got, total);
        });
    });
    assert_eq!(win.epoch(), total as u64);
    assert_eq!(target.stats().epochs_completed, total as u64);
}
