//! Async-native completion: Future/Waker notification, completion queues,
//! and the notified-put path — ISSUE 7's delay-sweep and stress suite.
//!
//! The racy part of a waker handoff is the window between the consumer's
//! "not complete yet" check and its waker registration. The delay sweeps
//! here move the completing write across that window (completer running
//! before the first poll, during it, and long after), asserting the future
//! resolves exactly once in every interleaving.

use pollster::block_on;
use rvma_core::api::{rvma_post_buffer_async, rvma_put_notify};
use rvma_core::{
    AsyncNetwork, CompletionQueue, DeliveryOrder, LoopbackNetwork, NodeAddr, Threshold, VirtAddr,
    DEFAULT_MTU,
};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;
use waker_fn::waker_fn;

/// Completer delays swept over every race-prone test: from "complete
/// before the consumer ever polls" through "complete while the consumer
/// is mid-handoff" to "consumer parked long before completion".
const DELAYS_US: &[u64] = &[0, 1, 10, 50, 200, 1000];

#[test]
fn future_resolves_across_completer_delay_sweep() {
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(1));
    let win = server
        .init_window(VirtAddr::new(0x10), Threshold::bytes(256))
        .unwrap();
    for (i, &delay) in DELAYS_US.iter().enumerate() {
        let fut = win.post_buffer_async(vec![0u8; 256]).unwrap();
        let payload = vec![i as u8 + 1; 256];
        let sent = payload.clone();
        let net = &net;
        let buf = std::thread::scope(|s| {
            s.spawn(move || {
                if delay > 0 {
                    std::thread::sleep(Duration::from_micros(delay));
                }
                net.initiator(NodeAddr::node(2))
                    .put(NodeAddr::node(1), VirtAddr::new(0x10), &sent)
                    .unwrap();
            });
            block_on(fut)
        });
        assert_eq!(buf.data(), payload.as_slice(), "delay {delay}us");
    }
}

#[test]
fn wake_before_register_resolves_on_first_poll() {
    // Completion lands before the future is ever polled: the first poll
    // must take the fast path without touching the waker.
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(7), Threshold::ops(1))
        .unwrap();
    let mut fut = win.post_buffer_async(vec![0u8; 64]).unwrap();
    client
        .put(NodeAddr::node(1), VirtAddr::new(7), &[9u8; 64])
        .unwrap(); // loopback: complete synchronously, before any poll
    let polls = Arc::new(AtomicU32::new(0));
    let wakes = Arc::new(AtomicU32::new(0));
    let w = wakes.clone();
    let waker = waker_fn(move || {
        w.fetch_add(1, Ordering::SeqCst);
    });
    let mut cx = Context::from_waker(&waker);
    let out = Pin::new(&mut fut).poll(&mut cx);
    polls.fetch_add(1, Ordering::SeqCst);
    match out {
        Poll::Ready(buf) => assert_eq!(buf.data(), &[9u8; 64]),
        Poll::Pending => panic!("completed slot must resolve on first poll"),
    }
    assert_eq!(wakes.load(Ordering::SeqCst), 0, "no waker was registered");
    let stats = server.stats();
    assert_eq!(stats.spurious_polls, 0);
}

#[test]
fn register_after_complete_race_is_never_lost() {
    // Manually drive the poll loop with a counting waker while an async
    // transport completes at a swept delay: however the registration and
    // the completing write interleave, the consumer either sees COMPLETE
    // on its re-check or gets woken — never parks forever.
    for &delay in DELAYS_US {
        let net = AsyncNetwork::new(
            DEFAULT_MTU,
            DeliveryOrder::InOrder,
            Duration::from_micros(delay),
        );
        let server = net.add_endpoint(NodeAddr::node(1));
        let client = net.initiator(NodeAddr::node(2));
        let win = server
            .init_window(VirtAddr::new(3), Threshold::ops(1))
            .unwrap();
        let mut fut = win.post_pooled_async(64).unwrap();
        client
            .put(NodeAddr::node(1), VirtAddr::new(3), &[5u8; 64])
            .unwrap();
        let wakes = Arc::new(AtomicU32::new(0));
        let w = wakes.clone();
        let waker = waker_fn(move || {
            w.fetch_add(1, Ordering::SeqCst);
        });
        let mut cx = Context::from_waker(&waker);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let buf = loop {
            match Pin::new(&mut fut).poll(&mut cx) {
                Poll::Ready(buf) => break buf,
                Poll::Pending => {
                    assert!(std::time::Instant::now() < deadline, "future hung");
                    // Wait for the wake instead of spinning: a lost wake
                    // fails the deadline above rather than masking itself.
                    while wakes.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline
                    {
                        std::thread::yield_now();
                    }
                }
            }
        };
        assert_eq!(buf.len(), 64, "delay {delay}us");
        assert!(wakes.load(Ordering::SeqCst) <= 1, "at most one wake");
    }
}

#[test]
fn dropped_future_leaves_slot_reusable() {
    let net = AsyncNetwork::default_network();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(5), Threshold::ops(1))
        .unwrap();

    // Cancel before completion: the completing write then has no waker to
    // hand off to, and must not wedge the epoch.
    let fut = win.post_buffer_async(vec![0u8; 32]).unwrap();
    drop(fut);
    client
        .put(NodeAddr::node(1), VirtAddr::new(5), &[1u8; 32])
        .unwrap();
    net.quiesce();

    // The mailbox rotated to the next posted buffer; a fresh async post on
    // the same window completes normally (no leaked TAKEN/registered
    // state survives the cancellation). Register the waker *before* the
    // put so the completing write must find it and issue exactly one wake.
    let mut fut = win.post_buffer_async(vec![0u8; 32]).unwrap();
    let wakes = Arc::new(AtomicU32::new(0));
    let w = wakes.clone();
    let waker = waker_fn(move || {
        w.fetch_add(1, Ordering::SeqCst);
    });
    let mut cx = Context::from_waker(&waker);
    assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
    client
        .put(NodeAddr::node(1), VirtAddr::new(5), &[2u8; 32])
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while wakes.load(Ordering::SeqCst) == 0 {
        assert!(std::time::Instant::now() < deadline, "wake never arrived");
        std::thread::yield_now();
    }
    match Pin::new(&mut fut).poll(&mut cx) {
        Poll::Ready(buf) => assert_eq!(buf.data(), &[2u8; 32]),
        Poll::Pending => panic!("woken future must be ready"),
    }

    let stats = server.stats();
    assert_eq!(stats.futures_dropped, 1);
    assert!(stats.notify_wakes >= 1);
}

#[test]
fn cq_delivers_exactly_once_under_producer_stress() {
    const PRODUCERS: u32 = 8;
    const PUTS_PER_PRODUCER: u64 = 64;
    let net = AsyncNetwork::with_options(DEFAULT_MTU, DeliveryOrder::InOrder, Duration::ZERO, 4);
    let server = net.add_endpoint(NodeAddr::node(0));
    let cq = CompletionQueue::new(64); // deliberately small: force spill
    let wins: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let win = server
                .init_window(VirtAddr::new(0x100 + p as u64), Threshold::ops(1))
                .unwrap();
            for _ in 0..PUTS_PER_PRODUCER {
                // user tag = producer id: exactly-once shows as an exact
                // per-tag count after the drain.
                win.post_pooled_cq(16, &cq, p as u64).unwrap();
            }
            win
        })
        .collect();

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let init = net.initiator(NodeAddr::node(p + 1));
            s.spawn(move || {
                for k in 0..PUTS_PER_PRODUCER {
                    init.put(
                        NodeAddr::node(0),
                        VirtAddr::new(0x100 + p as u64),
                        &[(k % 251) as u8; 16],
                    )
                    .unwrap();
                }
            });
        }
        // Consumer: drain concurrently with the producers.
        let total = (PRODUCERS as u64) * PUTS_PER_PRODUCER;
        let mut got = vec![0u64; PRODUCERS as usize];
        let mut scratch = Vec::new();
        let mut seen = 0u64;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while seen < total {
            let n = cq.wait_batch(32, &mut scratch, Duration::from_millis(100));
            for c in scratch.drain(..) {
                got[c.user as usize] += 1;
                assert_eq!(c.buffer.len(), 16);
            }
            seen += n as u64;
            assert!(std::time::Instant::now() < deadline, "CQ drain hung");
        }
        for (p, &count) in got.iter().enumerate() {
            assert_eq!(count, PUTS_PER_PRODUCER, "producer {p}: exactly once");
        }
    });
    drop(wins);

    let stats = cq.stats();
    assert_eq!(stats.enqueued, (PRODUCERS as u64) * PUTS_PER_PRODUCER);
    assert_eq!(stats.delivered, stats.enqueued);
    assert_eq!(cq.depth(), 0);
    assert_eq!(
        server.stats().cq_completions,
        (PRODUCERS as u64) * PUTS_PER_PRODUCER
    );
}

#[test]
fn cq_ready_future_wakes_consumer() {
    let net = AsyncNetwork::default_network();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(9), Threshold::ops(1))
        .unwrap();
    let cq = CompletionQueue::new(16);
    win.post_pooled_cq(8, &cq, 42).unwrap();
    client
        .put(NodeAddr::node(1), VirtAddr::new(9), &[3u8; 8])
        .unwrap();
    block_on(cq.ready());
    let mut out = Vec::new();
    assert_eq!(cq.poll_batch(16, &mut out), 1);
    assert_eq!(out[0].user, 42);
    assert_eq!(out[0].buffer.data(), &[3u8; 8]);
}

#[test]
fn put_notify_resolves_at_local_completion() {
    let net = AsyncNetwork::new(64, DeliveryOrder::OutOfOrder { seed: 11 }, Duration::ZERO);
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(0x20), Threshold::bytes(1024))
        .unwrap();
    let note_fut = win.post_buffer_async(vec![0u8; 1024]).unwrap();
    let payload: Vec<u8> = (0..1024u32).map(|i| (i % 250) as u8).collect();
    // 1024 bytes over a 64-byte MTU: 16 fragments behind one future.
    let put_fut =
        rvma_put_notify(&client, &payload, NodeAddr::node(1), VirtAddr::new(0x20)).unwrap();
    let delivery = block_on(put_fut);
    assert_eq!(delivery.fragments, 16);
    assert!(!delivery.nacked);
    // Local completion implies the fragments were delivered, which (at
    // threshold) implies the receiver's completion is also observable.
    assert_eq!(block_on(note_fut).data(), payload.as_slice());
}

#[test]
fn put_notify_reports_nack() {
    let net = AsyncNetwork::default_network();
    let _server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    // Mailbox 0x999 was never opened: every fragment NACKs NoSuchMailbox,
    // and the future still resolves (delivery reached final disposition).
    let fut = client
        .put_notify(NodeAddr::node(1), VirtAddr::new(0x999), &[0u8; 32])
        .unwrap();
    let delivery = block_on(fut);
    assert_eq!(delivery.fragments, 1);
    assert!(delivery.nacked);
    net.quiesce();
    assert_eq!(client.take_nacks().len(), 1);
}

#[test]
fn async_stats_flow_into_snapshot() {
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(2), Threshold::ops(1))
        .unwrap();
    let fut = rvma_post_buffer_async(&win, vec![0u8; 16]).unwrap();
    client
        .put(NodeAddr::node(1), VirtAddr::new(2), &[8u8; 16])
        .unwrap();
    let _ = block_on(fut);
    let stats = server.stats();
    // Loopback completes before the first poll: the wake funnel may or
    // may not fire depending on timing, but the counters must be coherent.
    assert_eq!(stats.futures_dropped, 0);
    assert_eq!(stats.cq_completions, 0);
}

#[test]
fn blocking_and_async_paths_coexist_on_one_window() {
    // A/B selectability: the same window serves a blocking post, an async
    // post, and a CQ post, in that epoch order.
    let net = AsyncNetwork::default_network();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(4), Threshold::ops(1))
        .unwrap();
    let cq = CompletionQueue::new(4);
    let mut blocking = win.post_buffer(vec![0u8; 8]).unwrap();
    let async_fut = win.post_buffer_async(vec![0u8; 8]).unwrap();
    win.post_buffer_cq(vec![0u8; 8], &cq, 7).unwrap();
    for v in 1..=3u8 {
        client
            .put(NodeAddr::node(1), VirtAddr::new(4), &[v; 8])
            .unwrap();
    }
    assert_eq!(blocking.wait().data(), &[1u8; 8]);
    assert_eq!(block_on(async_fut).data(), &[2u8; 8]);
    let mut out = Vec::new();
    let n = cq.wait_batch(4, &mut out, Duration::from_secs(10));
    assert_eq!(n, 1);
    assert_eq!(out[0].buffer.data(), &[3u8; 8]);
}

#[test]
fn zero_length_put_notify_resolves_on_threaded_path() {
    // Audit regression (no-wire-payload puts): a zero-length put must
    // still count as one fragment so the PutFuture countdown reaches its
    // final disposition instead of hanging at a zero-initialised counter.
    let net = AsyncNetwork::default_network();
    let server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let win = server
        .init_window(VirtAddr::new(0x60), Threshold::ops(2))
        .unwrap();
    let _note = win.post_buffer(vec![0u8; 64]).unwrap();
    let empty = client
        .put_notify(NodeAddr::node(1), VirtAddr::new(0x60), &[])
        .unwrap();
    let done = block_on(empty);
    assert_eq!(done.fragments, 1, "empty put is one counted wire fragment");
    assert!(!done.nacked);
    // And it participates in op-counted thresholds like any other put.
    let second = client
        .put_notify(NodeAddr::node(1), VirtAddr::new(0x60), &[3u8; 16])
        .unwrap();
    assert!(!block_on(second).nacked);
}

#[test]
fn zero_length_put_notify_nack_resolves_too() {
    // The other disposition: an empty put at an unbound mailbox must
    // resolve (as NACKed), not strand the future.
    let net = AsyncNetwork::default_network();
    let _server = net.add_endpoint(NodeAddr::node(1));
    let client = net.initiator(NodeAddr::node(2));
    let fut = client
        .put_notify(NodeAddr::node(1), VirtAddr::new(0x61), &[])
        .unwrap();
    let done = block_on(fut);
    assert_eq!(done.fragments, 1);
    assert!(done.nacked, "unbound mailbox NACKs the empty put");
}
