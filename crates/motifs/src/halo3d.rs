//! Halo3D motif: 3-D nearest-neighbour face exchange (paper Fig. 8).
//!
//! Every node owns an `nx × ny × nz` cell block inside a `px × py × pz`
//! node grid (non-periodic). Per iteration each node sends its six faces to
//! the corresponding neighbours, waits for the neighbours' faces, then
//! computes. Face sizes follow the geometry (`x` faces carry `ny·nz`
//! elements, etc.), so the motif is bandwidth-sensitive — which is why
//! topology matters more here than in Sweep3D, exactly as the paper
//! observes.

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};
use rvma_sim::SimTime;

/// Halo3D workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Halo3dConfig {
    /// Node grid (px, py, pz); node count must equal the product.
    pub pgrid: [u32; 3],
    /// Cells per node (nx, ny, nz).
    pub cells: [u32; 3],
    /// Bytes per cell element (8 for doubles).
    pub elem_bytes: u32,
    /// Iterations to run.
    pub iters: u32,
    /// Host compute time per iteration.
    pub compute: SimTime,
}

impl Default for Halo3dConfig {
    fn default() -> Self {
        Halo3dConfig {
            pgrid: [4, 4, 4],
            cells: [64, 64, 64],
            elem_bytes: 8,
            iters: 10,
            compute: SimTime::from_us(10),
        }
    }
}

impl Halo3dConfig {
    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.pgrid.iter().product()
    }

    /// Node id → grid coordinates.
    pub fn coords(&self, node: u32) -> [u32; 3] {
        let [px, py, _] = self.pgrid;
        [node % px, (node / px) % py, node / (px * py)]
    }

    /// Grid coordinates → node id.
    pub fn node_at(&self, c: [u32; 3]) -> u32 {
        let [px, py, _] = self.pgrid;
        c[0] + px * (c[1] + py * c[2])
    }

    /// Face payload bytes for an exchange along `dim`.
    pub fn face_bytes(&self, dim: usize) -> u64 {
        let [nx, ny, nz] = self.cells;
        let cells = match dim {
            0 => ny as u64 * nz as u64,
            1 => nx as u64 * nz as u64,
            _ => nx as u64 * ny as u64,
        };
        cells * self.elem_bytes as u64
    }

    /// Neighbours of `node`: `(direction index 0..6, neighbour id)` where
    /// direction `2·dim + (0 = plus, 1 = minus)`.
    pub fn neighbors(&self, node: u32) -> Vec<(usize, u32)> {
        let c = self.coords(node);
        let mut out = Vec::with_capacity(6);
        for dim in 0..3 {
            if c[dim] + 1 < self.pgrid[dim] {
                let mut n = c;
                n[dim] += 1;
                out.push((2 * dim, self.node_at(n)));
            }
            if c[dim] > 0 {
                let mut n = c;
                n[dim] -= 1;
                out.push((2 * dim + 1, self.node_at(n)));
            }
        }
        out
    }

    /// Total messages the whole job sends (for test cross-checks).
    pub fn total_messages(&self) -> u64 {
        let links: u64 = (0..self.nodes())
            .map(|n| self.neighbors(n).len() as u64)
            .sum();
        links * self.iters as u64
    }
}

/// Direction index seen by the *receiver* of a face sent along `dir`.
fn opposite(dir: usize) -> usize {
    dir ^ 1
}

#[derive(Debug, PartialEq)]
enum State {
    WaitingFaces,
    Computing,
    Done,
}

/// Per-node Halo3D behaviour.
pub struct Halo3dNode {
    cfg: Halo3dConfig,
    node: u32,
    /// `(my direction to them, neighbor id)` pairs.
    neighbors: Vec<(usize, u32)>,
    /// Messages received so far per incoming direction (monotonic).
    recvd: [u64; 6],
    iter: u32,
    state: State,
}

impl Halo3dNode {
    /// Behaviour for `node` under `cfg`.
    pub fn new(cfg: Halo3dConfig, node: u32) -> Self {
        let neighbors = cfg.neighbors(node);
        Halo3dNode {
            cfg,
            node,
            neighbors,
            recvd: [0; 6],
            iter: 0,
            state: State::WaitingFaces,
        }
    }

    fn send_faces(&mut self, api: &mut TermApi<'_, '_>) {
        for &(dir, peer) in &self.neighbors {
            // Tag with the direction as the *receiver* sees it, so the tag
            // doubles as the receiver's slot index and, for RDMA, the
            // channel/buffer identity (stable across iterations).
            api.send(peer, opposite(dir) as u64, self.cfg.face_bytes(dir / 2));
        }
    }

    /// All neighbours' faces for the current iteration arrived?
    fn faces_ready(&self) -> bool {
        self.neighbors
            .iter()
            .all(|&(dir, _)| self.recvd[dir] > self.iter as u64)
    }

    fn try_advance(&mut self, api: &mut TermApi<'_, '_>) {
        if self.state == State::WaitingFaces && self.faces_ready() {
            self.state = State::Computing;
            api.compute(self.cfg.compute, 0);
        }
    }
}

impl HostLogic for Halo3dNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        self.send_faces(api);
        self.try_advance(api);
    }

    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        let dir = msg.tag as usize;
        debug_assert!(dir < 6, "unexpected tag {}", msg.tag);
        self.recvd[dir] += 1;
        self.try_advance(api);
    }

    fn on_compute_done(&mut self, _tag: u64, api: &mut TermApi<'_, '_>) {
        debug_assert_eq!(self.state, State::Computing);
        self.iter += 1;
        if self.iter >= self.cfg.iters {
            self.state = State::Done;
            let now = api.now();
            api.record_time(MOTIF_DONE_HIST, now);
            api.count("motif.nodes_done");
            let _ = self.node;
            return;
        }
        self.send_faces(api);
        self.state = State::WaitingFaces;
        self.try_advance(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Halo3dConfig {
        Halo3dConfig {
            pgrid: [3, 2, 2],
            cells: [16, 8, 4],
            elem_bytes: 8,
            iters: 2,
            compute: SimTime::from_us(1),
        }
    }

    #[test]
    fn coords_roundtrip() {
        let c = cfg();
        for n in 0..c.nodes() {
            assert_eq!(c.node_at(c.coords(n)), n);
        }
    }

    #[test]
    fn face_bytes_follow_geometry() {
        let c = cfg();
        assert_eq!(c.face_bytes(0), 8 * 4 * 8); // ny*nz
        assert_eq!(c.face_bytes(1), 16 * 4 * 8); // nx*nz
        assert_eq!(c.face_bytes(2), 16 * 8 * 8); // nx*ny
    }

    #[test]
    fn corner_and_interior_neighbor_counts() {
        let c = cfg();
        // Corner (0,0,0): +x, +y, +z = 3 neighbors.
        assert_eq!(c.neighbors(0).len(), 3);
        // Middle of x-row (1,0,0): ±x, +y, +z = 4.
        assert_eq!(c.neighbors(1).len(), 4);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let c = cfg();
        for n in 0..c.nodes() {
            for (dir, peer) in c.neighbors(n) {
                let back = c.neighbors(peer);
                assert!(
                    back.iter().any(|&(d, p)| p == n && d == opposite(dir)),
                    "asymmetric neighbor {n}->{peer}"
                );
            }
        }
    }

    #[test]
    fn opposite_flips_low_bit() {
        assert_eq!(opposite(0), 1);
        assert_eq!(opposite(1), 0);
        assert_eq!(opposite(4), 5);
    }

    #[test]
    fn total_messages_counts_directed_links() {
        let c = cfg();
        // 3x2x2 grid: x-links 2*2*2=8, y-links 3*1*2=6, z-links 3*2*1=6;
        // directed = 2*(8+6+6) = 40 per iteration, 2 iterations.
        assert_eq!(c.total_messages(), 80);
    }
}
