//! KV-store motif: closed-loop GET/PUT traffic with zipfian keys.
//!
//! A client/server workload in the style of the paper's "public internet
//! client-server situations": the first `servers` nodes hold the key space
//! (key *k* lives on server `k % servers`, addressed by mailbox tag = *k*),
//! the remaining nodes are clients running a closed loop of `ops` one-sided
//! operations each. GETs are issued via [`TermApi::get`] (initiator-side
//! completion after the full round trip); PUTs via [`TermApi::send`]
//! (completion when the NIC has drained the send — fire-and-forget
//! durability, the cheap RVMA path). Keys are drawn from a zipfian
//! distribution so hot keys concentrate load on a few server mailboxes,
//! which is exactly where RDMA's per-channel handshakes and RTR credits
//! hurt and RVMA's post-once buckets do not.
//!
//! Clients draw keys from a private SplitMix64 stream seeded by
//! `(cfg.seed, node)` — independent of the engine RNG, so a motif's key
//! sequence is identical under the sequential and parallel engines and
//! across thread counts.

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};

/// KV workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Total nodes; the first `servers` serve, the rest run clients.
    pub nodes: u32,
    /// Server count (must be ≥ 1 and < `nodes`).
    pub servers: u32,
    /// Closed-loop operations per client.
    pub ops: u32,
    /// Fraction of operations that are GETs, in `[0, 1]`.
    pub read_ratio: f64,
    /// Value size in bytes (both GET responses and PUT payloads).
    pub value_bytes: u64,
    /// Key-space size.
    pub keys: u64,
    /// Zipf exponent (0 = uniform; ~1 = classic web skew).
    pub zipf_s: f64,
    /// Workload seed for the clients' private key/op streams.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            nodes: 16,
            servers: 4,
            ops: 32,
            read_ratio: 0.9,
            value_bytes: 1024,
            keys: 1024,
            zipf_s: 0.99,
            seed: 1,
        }
    }
}

impl KvConfig {
    /// Number of client nodes.
    pub fn clients(&self) -> u32 {
        self.nodes - self.servers
    }

    /// Total operations across all clients.
    pub fn total_ops(&self) -> u64 {
        self.clients() as u64 * self.ops as u64
    }
}

/// SplitMix64: tiny, seedable, and plenty for workload draws.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipfian sampler over ranks `0..n`: rank *r* has weight `1/(r+1)^s`.
/// Sampling is a binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` ranks with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty key space");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Map a uniform draw `u ∈ [0, 1)` to a rank.
    pub fn rank(&self, u: f64) -> u64 {
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

/// Per-node KV behaviour: server or client depending on the node index.
pub struct KvNode {
    cfg: KvConfig,
    node: u32,
    rng: SplitMix64,
    zipf: Zipf,
    issued: u32,
    completed: u32,
}

impl KvNode {
    /// Behaviour for `node` under `cfg`.
    pub fn new(cfg: KvConfig, node: u32) -> Self {
        assert!(cfg.servers >= 1, "need at least one server");
        assert!(cfg.servers < cfg.nodes, "need at least one client");
        let rng = SplitMix64::new(cfg.seed.wrapping_mul(0x0101_0101).wrapping_add(node as u64));
        let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
        KvNode {
            cfg,
            node,
            rng,
            zipf,
            issued: 0,
            completed: 0,
        }
    }

    fn is_server(&self) -> bool {
        self.node < self.cfg.servers
    }

    fn issue_next(&mut self, api: &mut TermApi<'_, '_>) {
        if self.issued == self.cfg.ops {
            return;
        }
        self.issued += 1;
        let key = self.zipf.rank(self.rng.next_f64());
        let server = (key % self.cfg.servers as u64) as u32;
        if self.rng.next_f64() < self.cfg.read_ratio {
            api.count("kv.gets");
            api.get(server, key, self.cfg.value_bytes);
        } else {
            api.count("kv.puts");
            api.send(server, key, self.cfg.value_bytes);
        }
    }

    fn op_done(&mut self, api: &mut TermApi<'_, '_>) {
        self.completed += 1;
        if self.completed == self.cfg.ops {
            let now = api.now();
            api.record_time(MOTIF_DONE_HIST, now);
            api.count("motif.nodes_done");
        } else {
            self.issue_next(api);
        }
    }
}

impl HostLogic for KvNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        if self.is_server() {
            // Servers are passive: post-once buckets, no application work.
            let now = api.now();
            api.record_time(MOTIF_DONE_HIST, now);
            api.count("motif.nodes_done");
            return;
        }
        self.issue_next(api);
    }

    fn on_recv(&mut self, _msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        debug_assert!(self.is_server(), "only servers receive PUTs");
        api.count("kv.served_puts");
    }

    fn on_send_complete(&mut self, _msg_id: u64, api: &mut TermApi<'_, '_>) {
        if !self.is_server() {
            self.op_done(api);
        }
    }

    fn on_get_complete(&mut self, _msg_id: u64, api: &mut TermApi<'_, '_>) {
        self.op_done(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_motif;
    use rvma_net::fabric::FabricConfig;
    use rvma_net::router::RoutingKind;
    use rvma_net::topology::star;
    use rvma_nic::{NicConfig, Protocol};

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let z = Zipf::new(100, 0.99);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // Rank 0 alone should absorb far more than uniform mass.
        assert!(z.cdf[0] > 5.0 / 100.0);
        assert_eq!(z.rank(0.0), 0);
        assert!(z.rank(0.999_999) >= 90);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            let u = (r as f64 + 0.5) / 10.0;
            assert_eq!(z.rank(u), r);
        }
    }

    #[test]
    fn splitmix_streams_are_seed_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::new(1);
        let mut d = SplitMix64::new(1);
        for _ in 0..8 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    fn run(cfg: &KvConfig, protocol: Protocol) -> crate::MotifResult {
        let spec = star(cfg.nodes, RoutingKind::Adaptive);
        let c = *cfg;
        run_motif(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            protocol,
            7,
            move |n| Box::new(KvNode::new(c, n)) as _,
        )
    }

    #[test]
    fn kv_completes_and_accounts_ops() {
        let cfg = KvConfig::default();
        for protocol in [Protocol::Rvma, Protocol::Rdma] {
            let r = run(&cfg, protocol);
            assert_eq!(r.nodes_done, cfg.nodes as u64);
        }
    }

    #[test]
    fn read_ratio_extremes() {
        let all_reads = KvConfig {
            read_ratio: 1.0,
            ..KvConfig::default()
        };
        let spec = star(all_reads.nodes, RoutingKind::Adaptive);
        let c = all_reads;
        let mut engine: rvma_sim::Engine<rvma_net::packet::NetEvent> = rvma_sim::Engine::new(7);
        let cluster = rvma_nic::build_cluster(
            &mut engine,
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rvma,
            move |n| Box::new(KvNode::new(c, n)) as _,
        );
        engine.run_to_completion();
        assert_eq!(
            engine.stats().counter_value("motif.nodes_done"),
            cluster.nodes() as u64
        );
        assert_eq!(
            engine.stats().counter_value("kv.gets"),
            all_reads.total_ops()
        );
        assert_eq!(engine.stats().counter_value("kv.puts"), 0);

        let all_writes = KvConfig {
            read_ratio: 0.0,
            ..KvConfig::default()
        };
        let c = all_writes;
        let mut engine: rvma_sim::Engine<rvma_net::packet::NetEvent> = rvma_sim::Engine::new(7);
        rvma_nic::build_cluster(
            &mut engine,
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rvma,
            move |n| Box::new(KvNode::new(c, n)) as _,
        );
        engine.run_to_completion();
        assert_eq!(
            engine.stats().counter_value("kv.puts"),
            all_writes.total_ops()
        );
        assert_eq!(engine.stats().counter_value("kv.gets"), 0);
    }

    #[test]
    fn same_seed_same_makespan() {
        let cfg = KvConfig::default();
        let a = run(&cfg, Protocol::Rvma);
        let b = run(&cfg, Protocol::Rvma);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
    }
}
