//! Motif execution harness: assemble a cluster, run, and summarize.

use rvma_net::fabric::{partition_fabric, FabricConfig, TopologySpec};
use rvma_net::packet::NetEvent;
use rvma_nic::{build_cluster, HostLogic, NicConfig, Protocol};
use rvma_sim::{Engine, ParEngine, SimConfig, SimTime, StatsRegistry};

/// Histogram name motif nodes record their finish time into.
pub const MOTIF_DONE_HIST: &str = "motif.node_done_ns";

/// Summary of one motif run.
#[derive(Debug, Clone)]
pub struct MotifResult {
    /// Topology name.
    pub topology: String,
    /// Protocol used.
    pub protocol: Protocol,
    /// Time at which the last node finished its motif work.
    pub makespan: SimTime,
    /// Simulated instant the network fully quiesced (includes trailing
    /// control traffic such as final RTRs).
    pub quiesce: SimTime,
    /// Nodes that reported completion.
    pub nodes_done: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Packets injected.
    pub packets: u64,
    /// RDMA registration handshakes.
    pub handshakes: u64,
    /// RDMA fences sent.
    pub fences: u64,
    /// RDMA RTR credits sent.
    pub rtrs: u64,
    /// Total events fired.
    pub events: u64,
}

impl MotifResult {
    /// Makespan in microseconds (convenience for reports).
    pub fn makespan_us(&self) -> f64 {
        self.makespan.as_us_f64()
    }
}

/// Distill a finished run's stats into a [`MotifResult`]. Panics if any
/// node failed to finish (deadlock in the motif or protocol model).
fn summarize(
    stats: &StatsRegistry,
    quiesce: SimTime,
    events: u64,
    nodes: u64,
    spec: &TopologySpec,
    protocol: Protocol,
) -> MotifResult {
    let nodes_done = stats.counter_value("motif.nodes_done");
    assert_eq!(
        nodes_done, nodes,
        "{} of {} nodes finished — motif deadlocked on {} / {}",
        nodes_done, nodes, spec.name, protocol
    );
    let makespan = stats
        .get_histogram(MOTIF_DONE_HIST)
        .and_then(|h| h.max())
        .map(SimTime::from_ns_f64)
        .unwrap_or(SimTime::ZERO);

    MotifResult {
        topology: spec.name.clone(),
        protocol,
        makespan,
        quiesce,
        nodes_done,
        msgs_sent: stats.counter_value("nic.msgs_sent"),
        packets: stats.counter_value("nic.packets_injected"),
        handshakes: stats.counter_value("nic.handshakes"),
        fences: stats.counter_value("nic.fences_sent"),
        rtrs: stats.counter_value("nic.rtrs_sent"),
        events,
    }
}

/// Run a motif on `spec` with per-node behaviour from `logic`, and collect
/// the summary. Panics if any node fails to finish (deadlock in the motif
/// or protocol model).
pub fn run_motif(
    spec: &TopologySpec,
    fcfg: &FabricConfig,
    ncfg: NicConfig,
    protocol: Protocol,
    seed: u64,
    logic: impl FnMut(u32) -> Box<dyn HostLogic>,
) -> MotifResult {
    let mut engine: Engine<NetEvent> = Engine::new(seed);
    let cluster = build_cluster(&mut engine, spec, fcfg, ncfg, protocol, logic);
    let nodes = cluster.nodes() as u64;
    let events = engine.run_to_completion();
    summarize(engine.stats(), engine.now(), events, nodes, spec, protocol)
}

/// Assemble a motif cluster inside a [`ParEngine`]: window clamped to the
/// fabric's lookahead, components partitioned topology-aware so terminals
/// co-locate with their switch ([`partition_fabric`]). The returned engine
/// is frozen-ready but not yet run; callers that want raw stats or traces
/// (e.g. parity tests) run it themselves.
pub fn build_motif_engine(
    spec: &TopologySpec,
    fcfg: &FabricConfig,
    ncfg: NicConfig,
    protocol: Protocol,
    seed: u64,
    sim: SimConfig,
    logic: impl FnMut(u32) -> Box<dyn HostLogic>,
) -> (ParEngine<NetEvent>, u64) {
    let mut cfg = sim;
    // The window must not exceed the minimum cross-shard latency or
    // cross-shard sends would land inside the current window.
    cfg.window = cfg.window.min(fcfg.lookahead());
    let mut engine: ParEngine<NetEvent> = ParEngine::new(seed, cfg);
    engine.set_partition(partition_fabric(spec, cfg.shards));
    let cluster = build_cluster(&mut engine, spec, fcfg, ncfg, protocol, logic);
    let nodes = cluster.nodes() as u64;
    (engine, nodes)
}

/// Parallel counterpart of [`run_motif`]: same summary, executed on the
/// sharded conservative-window [`ParEngine`]. Results are bit-identical
/// across `sim.threads` values (for a fixed `sim.shards`), but differ from
/// [`run_motif`] in RNG draws — the parallel engine forks one RNG stream
/// per shard, the sequential engine uses a single stream.
pub fn run_motif_par(
    spec: &TopologySpec,
    fcfg: &FabricConfig,
    ncfg: NicConfig,
    protocol: Protocol,
    seed: u64,
    sim: SimConfig,
    logic: impl FnMut(u32) -> Box<dyn HostLogic>,
) -> MotifResult {
    let (mut engine, nodes) = build_motif_engine(spec, fcfg, ncfg, protocol, seed, sim, logic);
    let events = engine.run_to_completion();
    summarize(engine.stats(), engine.now(), events, nodes, spec, protocol)
}

/// A node that participates in no communication: it reports completion at
/// t = 0. Used to pad topologies whose terminal count exceeds the motif's
/// process grid (the spare terminals the paper's node allocations also
/// leave idle).
pub struct IdleNode;

impl HostLogic for IdleNode {
    fn on_start(&mut self, api: &mut rvma_nic::TermApi<'_, '_>) {
        let now = api.now();
        api.record_time(MOTIF_DONE_HIST, now);
        api.count("motif.nodes_done");
    }
    fn on_recv(&mut self, _msg: rvma_nic::RecvInfo, _api: &mut rvma_nic::TermApi<'_, '_>) {}
}

/// Run the same motif under both protocols and report the RDMA/RVMA
/// makespan ratio (speedup > 1 means RVMA is faster) — the quantity the
/// paper's Figs. 7–8 plot.
pub fn compare_protocols(
    spec: &TopologySpec,
    fcfg: &FabricConfig,
    ncfg: NicConfig,
    seed: u64,
    mut logic: impl FnMut(u32) -> Box<dyn HostLogic>,
) -> (MotifResult, MotifResult, f64) {
    let rdma = run_motif(spec, fcfg, ncfg, Protocol::Rdma, seed, &mut logic);
    let rvma = run_motif(spec, fcfg, ncfg, Protocol::Rvma, seed, &mut logic);
    let speedup = rdma.makespan.as_ns_f64() / rvma.makespan.as_ns_f64();
    (rdma, rvma, speedup)
}
