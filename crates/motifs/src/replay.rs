//! Trace-driven workload replay.
//!
//! Beyond the fixed motifs, downstream users often have a communication
//! trace (from an application run or a synthetic generator) they want to
//! evaluate under RDMA vs. RVMA. A [`Trace`] is a list of [`TraceOp`]s per
//! node — timed sends, gets, and compute blocks with optional happens-after
//! dependencies on received messages — and [`ReplayNode`] executes one
//! node's slice against the simulated NIC.

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};
use rvma_sim::SimTime;

/// One operation in a node's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Send `bytes` to `dst` under `tag`.
    Send {
        /// Destination node.
        dst: u32,
        /// Channel tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// One-sided read of `bytes` from `dst` under `tag`; the replay blocks
    /// until the read completes.
    Get {
        /// Target node.
        dst: u32,
        /// Channel tag.
        tag: u64,
        /// Bytes to fetch.
        bytes: u64,
    },
    /// Busy the host for the duration.
    Compute(SimTime),
    /// Block until `count` messages (cumulative) have been received on
    /// `tag` — the happens-after edge for consumer dependencies.
    WaitRecv {
        /// Channel tag to count on.
        tag: u64,
        /// Cumulative message count to wait for.
        count: u64,
    },
}

/// A whole-job trace: `ops[node]` is that node's program.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-node operation lists.
    pub ops: Vec<Vec<TraceOp>>,
}

impl Trace {
    /// An empty trace for `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        Trace {
            ops: vec![Vec::new(); nodes as usize],
        }
    }

    /// Append an op to `node`'s program.
    pub fn push(&mut self, node: u32, op: TraceOp) -> &mut Self {
        self.ops[node as usize].push(op);
        self
    }

    /// Total sends across the trace (for accounting checks).
    pub fn total_sends(&self) -> u64 {
        self.ops
            .iter()
            .flatten()
            .filter(|o| matches!(o, TraceOp::Send { .. }))
            .count() as u64
    }

    /// A synthetic uniform-random trace: each node issues `sends` messages
    /// of `bytes` to targets drawn round-robin with a seed-dependent
    /// stride (deterministic, no RNG needed at replay time).
    pub fn uniform_random(nodes: u32, sends: u32, bytes: u64, seed: u64) -> Trace {
        assert!(nodes >= 2);
        let mut t = Trace::new(nodes);
        for n in 0..nodes {
            for k in 0..sends {
                let mix = n as u64 * 0x9E37_79B9 + k as u64 * 0x85EB_CA6B + seed;
                let dst = (mix % (nodes as u64 - 1)) as u32;
                let dst = if dst >= n { dst + 1 } else { dst };
                t.push(n, TraceOp::Send { dst, tag: 0, bytes });
            }
        }
        t
    }
}

#[derive(Debug, PartialEq)]
enum Blocker {
    None,
    Compute,
    Get(u64),
    Recv { tag: u64, count: u64 },
    Done,
}

/// Executes one node's slice of a [`Trace`].
pub struct ReplayNode {
    program: Vec<TraceOp>,
    pc: usize,
    blocker: Blocker,
    /// Cumulative receive counts per tag (small tag space assumed).
    recvd: std::collections::HashMap<u64, u64>,
}

impl ReplayNode {
    /// Behaviour for `node` of `trace`.
    pub fn new(trace: &Trace, node: u32) -> Self {
        ReplayNode {
            program: trace.ops[node as usize].clone(),
            pc: 0,
            blocker: Blocker::None,
            recvd: std::collections::HashMap::new(),
        }
    }

    /// Run ops until one blocks or the program ends.
    fn advance(&mut self, api: &mut TermApi<'_, '_>) {
        if self.blocker == Blocker::Done {
            return;
        }
        loop {
            // Re-check a pending recv dependency.
            if let Blocker::Recv { tag, count } = self.blocker {
                if self.recvd.get(&tag).copied().unwrap_or(0) < count {
                    return;
                }
                self.blocker = Blocker::None;
            }
            if self.blocker != Blocker::None {
                return;
            }
            let Some(op) = self.program.get(self.pc).copied() else {
                self.blocker = Blocker::Done;
                let now = api.now();
                api.record_time(MOTIF_DONE_HIST, now);
                api.count("motif.nodes_done");
                return;
            };
            self.pc += 1;
            match op {
                TraceOp::Send { dst, tag, bytes } => {
                    api.send(dst, tag, bytes);
                }
                TraceOp::Get { dst, tag, bytes } => {
                    let id = api.get(dst, tag, bytes);
                    self.blocker = Blocker::Get(id);
                    return;
                }
                TraceOp::Compute(dur) => {
                    api.compute(dur, 0);
                    self.blocker = Blocker::Compute;
                    return;
                }
                TraceOp::WaitRecv { tag, count } => {
                    self.blocker = Blocker::Recv { tag, count };
                }
            }
        }
    }
}

impl HostLogic for ReplayNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        self.advance(api);
    }

    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        *self.recvd.entry(msg.tag).or_insert(0) += 1;
        self.advance(api);
    }

    fn on_compute_done(&mut self, _tag: u64, api: &mut TermApi<'_, '_>) {
        if self.blocker == Blocker::Compute {
            self.blocker = Blocker::None;
        }
        self.advance(api);
    }

    fn on_get_complete(&mut self, msg_id: u64, api: &mut TermApi<'_, '_>) {
        if self.blocker == Blocker::Get(msg_id) {
            self.blocker = Blocker::None;
        }
        self.advance(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_motif;
    use rvma_net::fabric::FabricConfig;
    use rvma_net::router::RoutingKind;
    use rvma_net::topology::star;
    use rvma_nic::{NicConfig, Protocol};

    fn run_trace(trace: &Trace, proto: Protocol) -> crate::runner::MotifResult {
        let spec = star(trace.ops.len() as u32, RoutingKind::Adaptive);
        run_motif(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            proto,
            1,
            |n| Box::new(ReplayNode::new(trace, n)) as _,
        )
    }

    #[test]
    fn pingpong_trace_round_trips() {
        // Node 0: send, wait for reply. Node 1: wait, then reply.
        let mut t = Trace::new(2);
        t.push(
            0,
            TraceOp::Send {
                dst: 1,
                tag: 1,
                bytes: 4096,
            },
        )
        .push(0, TraceOp::WaitRecv { tag: 2, count: 1 });
        t.push(1, TraceOp::WaitRecv { tag: 1, count: 1 }).push(
            1,
            TraceOp::Send {
                dst: 0,
                tag: 2,
                bytes: 4096,
            },
        );
        let r = run_trace(&t, Protocol::Rvma);
        assert_eq!(r.nodes_done, 2);
        assert_eq!(r.msgs_sent, 2);
    }

    #[test]
    fn compute_and_get_block_in_order() {
        let mut t = Trace::new(2);
        t.push(0, TraceOp::Compute(SimTime::from_us(5)))
            .push(
                0,
                TraceOp::Get {
                    dst: 1,
                    tag: 0,
                    bytes: 8192,
                },
            )
            .push(0, TraceOp::Compute(SimTime::from_us(1)));
        let r = run_trace(&t, Protocol::Rvma);
        assert_eq!(r.nodes_done, 2);
        // Makespan covers both computes and the get round trip.
        assert!(r.makespan > SimTime::from_us(6));
    }

    #[test]
    fn uniform_random_trace_is_deterministic_and_complete() {
        let t = Trace::uniform_random(8, 16, 2048, 7);
        assert_eq!(t.total_sends(), 8 * 16);
        // No self-sends.
        for (n, ops) in t.ops.iter().enumerate() {
            for op in ops {
                if let TraceOp::Send { dst, .. } = op {
                    assert_ne!(*dst as usize, n);
                }
            }
        }
        let a = run_trace(&t, Protocol::Rdma);
        let b = run_trace(&t, Protocol::Rdma);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.msgs_sent, 8 * 16);
    }

    #[test]
    fn rvma_faster_on_random_traffic() {
        // Fire-and-forget sends complete the *program* instantly; to time
        // the traffic, every node also waits for the messages addressed to
        // it (computable from the deterministic trace).
        let mut t = Trace::uniform_random(8, 32, 4096, 3);
        let mut expected = [0u64; 8];
        for ops in &t.ops {
            for op in ops {
                if let TraceOp::Send { dst, .. } = op {
                    expected[*dst as usize] += 1;
                }
            }
        }
        for (n, &count) in expected.iter().enumerate() {
            if count > 0 {
                t.push(n as u32, TraceOp::WaitRecv { tag: 0, count });
            }
        }
        let rdma = run_trace(&t, Protocol::Rdma);
        let rvma = run_trace(&t, Protocol::Rvma);
        assert_eq!(rdma.nodes_done, 8);
        assert!(
            rvma.makespan < rdma.makespan,
            "rvma {} vs rdma {}",
            rvma.makespan,
            rdma.makespan
        );
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let t = Trace::new(2);
        let r = run_trace(&t, Protocol::Rvma);
        assert_eq!(r.nodes_done, 2);
        assert_eq!(r.makespan, SimTime::ZERO);
    }
}
