//! # rvma-motifs — application communication motifs
//!
//! Ember-style motifs driving the simulated cluster, used to regenerate the
//! paper's Figs. 7–8:
//!
//! * [`Sweep3dNode`] — KBA wavefront sweeps (latency-bound; Fig. 7),
//! * [`Halo3dNode`] — 3-D nearest-neighbour halo exchange (bandwidth-bound;
//!   Fig. 8),
//! * [`KvNode`] — closed-loop KV-store GET/PUT with zipfian keys (the
//!   client-server pattern the paper's introduction motivates RVMA with),
//! * [`run_motif`] / [`compare_protocols`] — the harness that assembles a
//!   cluster, runs a motif to quiescence, and reports makespans and
//!   protocol-event counts. [`run_motif_par`] is the same harness on the
//!   sharded parallel engine ([`rvma_sim::ParEngine`]).

pub mod allreduce;
pub mod halo3d;
pub mod incast;
pub mod kvstore;
pub mod replay;
pub mod runner;
pub mod sweep3d;

pub use allreduce::{AllReduceConfig, AllReduceNode};
pub use halo3d::{Halo3dConfig, Halo3dNode};
pub use incast::{IncastConfig, IncastNode, INCAST_TAG};
pub use kvstore::{KvConfig, KvNode, Zipf};
pub use replay::{ReplayNode, Trace, TraceOp};
pub use runner::{
    build_motif_engine, compare_protocols, run_motif, run_motif_par, IdleNode, MotifResult,
    MOTIF_DONE_HIST,
};
pub use sweep3d::{Sweep3dConfig, Sweep3dNode};
