//! Ring AllReduce motif.
//!
//! A standard collective pattern (Ember ships an allreduce motif alongside
//! sweep3d/halo3d): `n` nodes reduce a vector of `bytes` using the
//! bandwidth-optimal ring algorithm — `n − 1` reduce-scatter steps followed
//! by `n − 1` allgather steps, each step sending one `bytes / n` chunk to
//! the ring successor. Per-message data is small but every step is a
//! serialized dependency, so the motif stresses exactly the per-message
//! coordination RVMA removes.

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};
use rvma_sim::SimTime;

/// AllReduce workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct AllReduceConfig {
    /// Ring size (nodes participating).
    pub nodes: u32,
    /// Total vector bytes being reduced.
    pub bytes: u64,
    /// Consecutive allreduce operations to run.
    pub iters: u32,
    /// Host reduction compute per received chunk.
    pub compute_per_chunk: SimTime,
}

impl Default for AllReduceConfig {
    fn default() -> Self {
        AllReduceConfig {
            nodes: 8,
            bytes: 1 << 20,
            iters: 4,
            compute_per_chunk: SimTime::from_ns(500),
        }
    }
}

impl AllReduceConfig {
    /// Steps per allreduce: reduce-scatter + allgather.
    pub fn steps(&self) -> u32 {
        2 * (self.nodes - 1)
    }

    /// Chunk bytes sent per step.
    pub fn chunk_bytes(&self) -> u64 {
        self.bytes.div_ceil(self.nodes as u64)
    }

    /// Total messages the whole job sends.
    pub fn total_messages(&self) -> u64 {
        self.nodes as u64 * self.steps() as u64 * self.iters as u64
    }
}

/// Channel tag for ring traffic (one channel per predecessor).
const RING_TAG: u64 = 0x41; // 'A'

#[derive(Debug, PartialEq)]
enum State {
    /// Waiting for the predecessor's chunk for the current step.
    Waiting,
    /// Reducing/copying the received chunk.
    Computing,
    Done,
}

/// Per-node ring-allreduce behaviour.
pub struct AllReduceNode {
    cfg: AllReduceConfig,
    node: u32,
    iter: u32,
    step: u32,
    /// Chunks received from the predecessor (monotonic, across iters).
    recvd: u64,
    consumed: u64,
    state: State,
}

impl AllReduceNode {
    /// Behaviour for `node` under `cfg`.
    pub fn new(cfg: AllReduceConfig, node: u32) -> Self {
        debug_assert!(node < cfg.nodes);
        AllReduceNode {
            cfg,
            node,
            iter: 0,
            step: 0,
            recvd: 0,
            consumed: 0,
            state: State::Waiting,
        }
    }

    fn successor(&self) -> u32 {
        (self.node + 1) % self.cfg.nodes
    }

    fn send_chunk(&self, api: &mut TermApi<'_, '_>) {
        api.send(self.successor(), RING_TAG, self.cfg.chunk_bytes());
    }

    fn try_advance(&mut self, api: &mut TermApi<'_, '_>) {
        if self.state != State::Waiting || self.recvd < self.consumed + 1 {
            return;
        }
        self.consumed += 1;
        self.state = State::Computing;
        api.compute(self.cfg.compute_per_chunk, 0);
    }
}

impl HostLogic for AllReduceNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        // Step 0 of iteration 0: every node sends its first chunk.
        self.send_chunk(api);
        self.try_advance(api);
    }

    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        debug_assert_eq!(msg.tag, RING_TAG);
        self.recvd += 1;
        self.try_advance(api);
    }

    fn on_compute_done(&mut self, _tag: u64, api: &mut TermApi<'_, '_>) {
        debug_assert_eq!(self.state, State::Computing);
        self.step += 1;
        if self.step >= self.cfg.steps() {
            self.step = 0;
            self.iter += 1;
            if self.iter >= self.cfg.iters {
                self.state = State::Done;
                let now = api.now();
                api.record_time(MOTIF_DONE_HIST, now);
                api.count("motif.nodes_done");
                return;
            }
        }
        // Forward the reduced/gathered chunk for the next step.
        self.send_chunk(api);
        self.state = State::Waiting;
        self.try_advance(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_motif;
    use rvma_net::fabric::FabricConfig;
    use rvma_net::router::RoutingKind;
    use rvma_net::topology::{torus3d, TorusParams};
    use rvma_nic::{NicConfig, Protocol};

    fn cfg() -> AllReduceConfig {
        AllReduceConfig {
            nodes: 8,
            bytes: 64 << 10,
            iters: 2,
            compute_per_chunk: SimTime::from_ns(200),
        }
    }

    #[test]
    fn accounting() {
        let c = cfg();
        assert_eq!(c.steps(), 14);
        assert_eq!(c.chunk_bytes(), 8 << 10);
        assert_eq!(c.total_messages(), 8 * 14 * 2);
    }

    #[test]
    fn chunk_bytes_rounds_up() {
        let c = AllReduceConfig {
            nodes: 3,
            bytes: 10,
            ..cfg()
        };
        assert_eq!(c.chunk_bytes(), 4);
    }

    #[test]
    fn ring_completes_under_both_protocols() {
        let c = cfg();
        let spec = torus3d(
            TorusParams {
                dims: [2, 2, 2],
                tps: 1,
            },
            RoutingKind::Adaptive,
        );
        for proto in [Protocol::Rvma, Protocol::Rdma] {
            let r = run_motif(
                &spec,
                &FabricConfig::at_gbps(100),
                NicConfig::default(),
                proto,
                1,
                |n| Box::new(AllReduceNode::new(c, n)) as _,
            );
            assert_eq!(r.nodes_done, 8, "{proto}");
            assert_eq!(r.msgs_sent, c.total_messages(), "{proto}");
        }
    }

    #[test]
    fn rvma_faster_than_rdma_on_ring() {
        let c = cfg();
        let spec = torus3d(
            TorusParams {
                dims: [2, 2, 2],
                tps: 1,
            },
            RoutingKind::Adaptive,
        );
        let time = |proto| {
            run_motif(
                &spec,
                &FabricConfig::at_gbps(400),
                NicConfig::default(),
                proto,
                1,
                |n| Box::new(AllReduceNode::new(c, n)) as _,
            )
            .makespan
        };
        assert!(time(Protocol::Rvma) < time(Protocol::Rdma));
    }
}
