//! Incast motif: many-to-one traffic.
//!
//! The paper's introduction motivates RVMA with many-to-one communication
//! ("public internet client-server situations") where RDMA's model breaks:
//! either all clients coordinate one shared buffer, or the server dedicates
//! exclusive resources per client for an unbounded time. Under RVMA the
//! server posts one bucket and every client just puts.
//!
//! This motif has `n − 1` senders stream `msgs` messages of `bytes` each at
//! node 0. It doubles as the NIC counter-pressure workload (many concurrent
//! in-flight messages at one endpoint) used by the counter-capacity
//! ablation.

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};

/// Incast workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct IncastConfig {
    /// Total nodes; node 0 is the sink, nodes `1..nodes` send.
    pub nodes: u32,
    /// Messages per sender.
    pub msgs: u32,
    /// Bytes per message.
    pub bytes: u64,
}

impl IncastConfig {
    /// Messages the sink must absorb.
    pub fn total_messages(&self) -> u64 {
        (self.nodes as u64 - 1) * self.msgs as u64
    }
}

/// Mailbox ("service port") all senders target.
pub const INCAST_TAG: u64 = 0x5EC;

/// Per-node incast behaviour.
pub struct IncastNode {
    cfg: IncastConfig,
    node: u32,
    received: u64,
}

impl IncastNode {
    /// Behaviour for `node` under `cfg`.
    pub fn new(cfg: IncastConfig, node: u32) -> Self {
        IncastNode {
            cfg,
            node,
            received: 0,
        }
    }
}

impl HostLogic for IncastNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        if self.node == 0 {
            return; // the sink waits
        }
        for _ in 0..self.cfg.msgs {
            api.send(0, INCAST_TAG, self.cfg.bytes);
        }
        // Senders are done once their commands are issued; the wire time is
        // charged to the sink's completion.
        let now = api.now();
        api.record_time(MOTIF_DONE_HIST, now);
        api.count("motif.nodes_done");
    }

    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        debug_assert_eq!(self.node, 0, "only the sink receives");
        debug_assert_eq!(msg.tag, INCAST_TAG);
        self.received += 1;
        if self.received == self.cfg.total_messages() {
            let now = api.now();
            api.record_time(MOTIF_DONE_HIST, now);
            api.count("motif.nodes_done");
            api.record("incast.sink_done_us", now.as_us_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_motif;
    use rvma_net::fabric::FabricConfig;
    use rvma_net::router::RoutingKind;
    use rvma_net::topology::star;
    use rvma_nic::{NicConfig, Protocol};

    fn cfg() -> IncastConfig {
        IncastConfig {
            nodes: 9,
            msgs: 4,
            bytes: 4096,
        }
    }

    #[test]
    fn message_accounting() {
        assert_eq!(cfg().total_messages(), 32);
    }

    #[test]
    fn incast_completes_under_rvma() {
        let c = cfg();
        let spec = star(c.nodes, RoutingKind::Adaptive);
        let r = run_motif(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rvma,
            1,
            |n| Box::new(IncastNode::new(c, n)) as _,
        );
        assert_eq!(r.nodes_done, c.nodes as u64);
        assert_eq!(r.msgs_sent, c.total_messages());
        assert_eq!(r.handshakes, 0, "RVMA sink dedicates nothing per client");
    }

    #[test]
    fn incast_rdma_pays_per_client_resources() {
        let c = cfg();
        let spec = star(c.nodes, RoutingKind::Adaptive);
        let r = run_motif(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rdma,
            1,
            |n| Box::new(IncastNode::new(c, n)) as _,
        );
        assert_eq!(r.nodes_done, c.nodes as u64);
        // One registered buffer (channel) per client: the exclusive
        // per-client resource the paper criticizes.
        assert_eq!(r.handshakes, (c.nodes - 1) as u64);
        assert_eq!(r.rtrs, c.total_messages());
    }

    #[test]
    fn rvma_sink_finishes_sooner_than_rdma() {
        let c = cfg();
        let spec = star(c.nodes, RoutingKind::Adaptive);
        let run = |p| {
            run_motif(
                &spec,
                &FabricConfig::at_gbps(100),
                NicConfig::default(),
                p,
                1,
                |n| Box::new(IncastNode::new(c, n)) as _,
            )
            .makespan
        };
        assert!(run(Protocol::Rvma) < run(Protocol::Rdma));
    }
}
