//! Sweep3D motif: KBA wavefront sweeps (paper Fig. 7).
//!
//! The process grid decomposes x and y over `px × py` nodes; the z column
//! stays local and is swept in `zblocks` pipelined chunks. Eight octant
//! sweeps run back-to-back, each a wavefront from one (x, y) corner: a node
//! waits for the boundary faces of the current z-block from its upstream x
//! and y neighbours, computes the block, and forwards faces downstream.
//! Messages are small (an edge strip per block) and sit on the critical
//! path of the wavefront, making the motif latency-sensitive — the regime
//! where the paper finds RVMA's biggest wins (up to 4.4×).

use crate::runner::MOTIF_DONE_HIST;
use rvma_nic::{HostLogic, RecvInfo, TermApi};
use rvma_sim::SimTime;

/// Sweep3D workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Sweep3dConfig {
    /// Process grid (px, py).
    pub pgrid: [u32; 2],
    /// Cells per node (nx, ny, nz).
    pub cells: [u32; 3],
    /// Cells per z-block (pipelining grain); must divide nz.
    pub zblock: u32,
    /// Bytes per cell element.
    pub elem_bytes: u32,
    /// Host compute time per z-block.
    pub compute_per_block: SimTime,
    /// Number of corner sweeps (the full sweep is 8 octants).
    pub octants: u32,
}

impl Default for Sweep3dConfig {
    fn default() -> Self {
        Sweep3dConfig {
            pgrid: [8, 8],
            cells: [32, 32, 256],
            zblock: 32,
            elem_bytes: 8,
            compute_per_block: SimTime::from_us(2),
            octants: 8,
        }
    }
}

impl Sweep3dConfig {
    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.pgrid[0] * self.pgrid[1]
    }

    /// Node id → (ix, iy).
    pub fn coords(&self, node: u32) -> [u32; 2] {
        [node % self.pgrid[0], node / self.pgrid[0]]
    }

    /// (ix, iy) → node id.
    pub fn node_at(&self, c: [u32; 2]) -> u32 {
        c[0] + self.pgrid[0] * c[1]
    }

    /// z-blocks per octant sweep.
    pub fn blocks(&self) -> u32 {
        debug_assert_eq!(self.cells[2] % self.zblock, 0, "zblock must divide nz");
        self.cells[2] / self.zblock
    }

    /// Bytes of the x-boundary face per z-block (ny × zblock elements).
    pub fn x_face_bytes(&self) -> u64 {
        self.cells[1] as u64 * self.zblock as u64 * self.elem_bytes as u64
    }

    /// Bytes of the y-boundary face per z-block (nx × zblock elements).
    pub fn y_face_bytes(&self) -> u64 {
        self.cells[0] as u64 * self.zblock as u64 * self.elem_bytes as u64
    }

    /// Sweep direction of octant `o`: (sx, sy), each ±1. The z direction
    /// flips too but z is not decomposed, so it does not change the
    /// communication pattern — octants 4..8 repeat the four corners.
    pub fn direction(&self, octant: u32) -> (i32, i32) {
        match octant % 4 {
            0 => (1, 1),
            1 => (-1, 1),
            2 => (1, -1),
            _ => (-1, -1),
        }
    }

    /// Upstream neighbour in x for `octant` at `coords`, if any.
    pub fn upstream_x(&self, octant: u32, c: [u32; 2]) -> Option<u32> {
        let (sx, _) = self.direction(octant);
        if sx > 0 {
            (c[0] > 0).then(|| self.node_at([c[0] - 1, c[1]]))
        } else {
            (c[0] + 1 < self.pgrid[0]).then(|| self.node_at([c[0] + 1, c[1]]))
        }
    }

    /// Downstream neighbour in x.
    pub fn downstream_x(&self, octant: u32, c: [u32; 2]) -> Option<u32> {
        let (sx, _) = self.direction(octant);
        if sx > 0 {
            (c[0] + 1 < self.pgrid[0]).then(|| self.node_at([c[0] + 1, c[1]]))
        } else {
            (c[0] > 0).then(|| self.node_at([c[0] - 1, c[1]]))
        }
    }

    /// Upstream neighbour in y.
    pub fn upstream_y(&self, octant: u32, c: [u32; 2]) -> Option<u32> {
        let (_, sy) = self.direction(octant);
        if sy > 0 {
            (c[1] > 0).then(|| self.node_at([c[0], c[1] - 1]))
        } else {
            (c[1] + 1 < self.pgrid[1]).then(|| self.node_at([c[0], c[1] + 1]))
        }
    }

    /// Downstream neighbour in y.
    pub fn downstream_y(&self, octant: u32, c: [u32; 2]) -> Option<u32> {
        let (_, sy) = self.direction(octant);
        if sy > 0 {
            (c[1] + 1 < self.pgrid[1]).then(|| self.node_at([c[0], c[1] + 1]))
        } else {
            (c[1] > 0).then(|| self.node_at([c[0], c[1] - 1]))
        }
    }

    /// Total messages the whole job sends (for test cross-checks): per
    /// octant and z-block, every node with a downstream neighbour sends one
    /// message per direction.
    pub fn total_messages(&self) -> u64 {
        let mut per_octant = 0u64;
        for o in 0..self.octants.min(4) {
            // Directions repeat after 4 octants.
            let mut links = 0u64;
            for n in 0..self.nodes() {
                let c = self.coords(n);
                links += self.downstream_x(o, c).is_some() as u64;
                links += self.downstream_y(o, c).is_some() as u64;
            }
            let reps = (self.octants / 4) + u64::from(o < self.octants % 4) as u32;
            per_octant += links * reps as u64;
        }
        per_octant * self.blocks() as u64
    }
}

/// Tags: x-faces on channel 0, y-faces on channel 1 (stable per peer, so
/// RDMA reuses one registered buffer per channel).
const TAG_X: u64 = 0;
const TAG_Y: u64 = 1;

#[derive(Debug, PartialEq)]
enum State {
    Waiting,
    Computing,
    Done,
}

/// Per-node Sweep3D behaviour.
pub struct Sweep3dNode {
    cfg: Sweep3dConfig,
    coords: [u32; 2],
    octant: u32,
    block: u32,
    /// Monotonic received / consumed message counts per direction channel.
    recvd_x: u64,
    recvd_y: u64,
    consumed_x: u64,
    consumed_y: u64,
    state: State,
}

impl Sweep3dNode {
    /// Behaviour for `node` under `cfg`.
    pub fn new(cfg: Sweep3dConfig, node: u32) -> Self {
        Sweep3dNode {
            coords: cfg.coords(node),
            cfg,
            octant: 0,
            block: 0,
            recvd_x: 0,
            recvd_y: 0,
            consumed_x: 0,
            consumed_y: 0,
            state: State::Waiting,
        }
    }

    /// Messages needed before the current block may compute.
    fn ready(&self) -> bool {
        let need_x =
            self.consumed_x + self.cfg.upstream_x(self.octant, self.coords).is_some() as u64;
        let need_y =
            self.consumed_y + self.cfg.upstream_y(self.octant, self.coords).is_some() as u64;
        self.recvd_x >= need_x && self.recvd_y >= need_y
    }

    fn try_advance(&mut self, api: &mut TermApi<'_, '_>) {
        if self.state != State::Waiting || !self.ready() {
            return;
        }
        // Consume the upstream faces and compute the block.
        self.consumed_x += self.cfg.upstream_x(self.octant, self.coords).is_some() as u64;
        self.consumed_y += self.cfg.upstream_y(self.octant, self.coords).is_some() as u64;
        self.state = State::Computing;
        api.compute(self.cfg.compute_per_block, 0);
    }
}

impl HostLogic for Sweep3dNode {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        self.try_advance(api);
    }

    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>) {
        match msg.tag {
            TAG_X => self.recvd_x += 1,
            TAG_Y => self.recvd_y += 1,
            t => debug_assert!(false, "unexpected tag {t}"),
        }
        self.try_advance(api);
    }

    fn on_compute_done(&mut self, _tag: u64, api: &mut TermApi<'_, '_>) {
        debug_assert_eq!(self.state, State::Computing);
        // Forward the block's faces downstream.
        if let Some(peer) = self.cfg.downstream_x(self.octant, self.coords) {
            api.send(peer, TAG_X, self.cfg.x_face_bytes());
        }
        if let Some(peer) = self.cfg.downstream_y(self.octant, self.coords) {
            api.send(peer, TAG_Y, self.cfg.y_face_bytes());
        }
        // Advance block / octant.
        self.block += 1;
        if self.block >= self.cfg.blocks() {
            self.block = 0;
            self.octant += 1;
            if self.octant >= self.cfg.octants {
                self.state = State::Done;
                let now = api.now();
                api.record_time(MOTIF_DONE_HIST, now);
                api.count("motif.nodes_done");
                return;
            }
        }
        self.state = State::Waiting;
        self.try_advance(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Sweep3dConfig {
        Sweep3dConfig {
            pgrid: [3, 2],
            cells: [8, 8, 32],
            zblock: 8,
            elem_bytes: 8,
            compute_per_block: SimTime::from_us(1),
            octants: 8,
        }
    }

    #[test]
    fn geometry() {
        let c = cfg();
        assert_eq!(c.nodes(), 6);
        assert_eq!(c.blocks(), 4);
        assert_eq!(c.x_face_bytes(), 8 * 8 * 8);
        assert_eq!(c.y_face_bytes(), 8 * 8 * 8);
        for n in 0..c.nodes() {
            assert_eq!(c.node_at(c.coords(n)), n);
        }
    }

    #[test]
    fn octant_directions_cover_corners() {
        let c = cfg();
        let dirs: Vec<_> = (0..4).map(|o| c.direction(o)).collect();
        assert_eq!(dirs, vec![(1, 1), (-1, 1), (1, -1), (-1, -1)]);
        assert_eq!(c.direction(4), c.direction(0));
    }

    #[test]
    fn corner_node_has_no_upstream_in_octant_zero() {
        let c = cfg();
        assert_eq!(c.upstream_x(0, [0, 0]), None);
        assert_eq!(c.upstream_y(0, [0, 0]), None);
        assert_eq!(c.downstream_x(0, [0, 0]), Some(1));
        assert_eq!(c.downstream_y(0, [0, 0]), Some(3));
    }

    #[test]
    fn opposite_corner_upstream_in_octant_three() {
        let c = cfg();
        // Octant 3 direction (-1,-1): sweep starts at (2,1).
        assert_eq!(c.upstream_x(3, [2, 1]), None);
        assert_eq!(c.upstream_y(3, [2, 1]), None);
        assert_eq!(c.downstream_x(3, [2, 1]), Some(c.node_at([1, 1])));
        assert_eq!(c.downstream_y(3, [2, 1]), Some(c.node_at([2, 0])));
    }

    #[test]
    fn upstream_downstream_are_inverse() {
        let c = cfg();
        for o in 0..4 {
            for n in 0..c.nodes() {
                let me = c.coords(n);
                if let Some(d) = c.downstream_x(o, me) {
                    assert_eq!(c.upstream_x(o, c.coords(d)), Some(n));
                }
                if let Some(d) = c.downstream_y(o, me) {
                    assert_eq!(c.upstream_y(o, c.coords(d)), Some(n));
                }
            }
        }
    }

    #[test]
    fn total_messages_matches_hand_count() {
        let c = cfg();
        // Per octant: x-links with a downstream = 2 per row × 2 rows = 4;
        // y-links = 1 per column × 3 columns = 3; total 7 per octant per
        // block. 8 octants × 4 blocks × 7 = 224.
        assert_eq!(c.total_messages(), 224);
    }
}
