//! End-to-end motif runs on small fabrics: liveness, message accounting,
//! and the qualitative protocol ordering the paper reports.

use rvma_motifs::{
    compare_protocols, run_motif, Halo3dConfig, Halo3dNode, Sweep3dConfig, Sweep3dNode,
};
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_net::topology::{dragonfly, hyperx, torus3d, DragonflyParams, HyperXParams, TorusParams};
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::SimTime;

fn small_halo() -> Halo3dConfig {
    Halo3dConfig {
        pgrid: [2, 2, 2],
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 3,
        compute: SimTime::from_us(2),
    }
}

fn small_sweep() -> Sweep3dConfig {
    Sweep3dConfig {
        pgrid: [4, 2],
        cells: [16, 16, 64],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_us(1),
        octants: 8,
    }
}

/// 2×2×2 torus carries exactly the 8 halo nodes.
fn torus_spec(kind: RoutingKind) -> rvma_net::fabric::TopologySpec {
    torus3d(
        TorusParams {
            dims: [2, 2, 2],
            tps: 1,
        },
        kind,
    )
}

/// 4×2 HyperX with one terminal per switch = 8 nodes.
fn hyperx_spec(kind: RoutingKind) -> rvma_net::fabric::TopologySpec {
    hyperx(HyperXParams { d: [4, 2], tps: 1 }, kind)
}

#[test]
fn halo3d_completes_and_counts_messages() {
    let cfg = small_halo();
    let spec = torus_spec(RoutingKind::Static);
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rvma,
        1,
        |n| Box::new(Halo3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(r.nodes_done, 8);
    assert_eq!(r.msgs_sent, cfg.total_messages());
    assert!(r.makespan > SimTime::ZERO);
    assert!(r.quiesce >= r.makespan);
    assert_eq!(r.handshakes, 0);
}

#[test]
fn halo3d_rdma_handshakes_once_per_channel() {
    let cfg = small_halo();
    let spec = torus_spec(RoutingKind::Static);
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rdma,
        1,
        |n| Box::new(Halo3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(r.nodes_done, 8);
    // One handshake per directed neighbor link (channel), amortized over
    // iterations: 8 nodes x 3 neighbors each in a 2x2x2 grid.
    let channels: u64 = (0..8).map(|n| cfg.neighbors(n).len() as u64).sum();
    assert_eq!(r.handshakes, channels);
    // One RTR per consumed message.
    assert_eq!(r.rtrs, cfg.total_messages());
    // Spec-compliant RDMA: one completion fence per message even on an
    // ordered network.
    assert_eq!(r.fences, cfg.total_messages());
}

#[test]
fn halo3d_rdma_fences_on_adaptive() {
    let cfg = small_halo();
    let spec = torus_spec(RoutingKind::Adaptive);
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rdma,
        1,
        |n| Box::new(Halo3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(r.fences, cfg.total_messages());
}

#[test]
fn sweep3d_completes_and_counts_messages() {
    let cfg = small_sweep();
    let spec = hyperx_spec(RoutingKind::Static);
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rvma,
        1,
        |n| Box::new(Sweep3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(r.nodes_done, 8);
    assert_eq!(r.msgs_sent, cfg.total_messages());
}

#[test]
fn sweep3d_rvma_beats_rdma_on_adaptive_network() {
    let cfg = small_sweep();
    let spec = hyperx_spec(RoutingKind::Adaptive);
    let (rdma, rvma, speedup) = compare_protocols(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        1,
        |n| Box::new(Sweep3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(rdma.nodes_done, 8);
    assert_eq!(rvma.nodes_done, 8);
    assert!(
        speedup > 1.0,
        "RVMA should beat RDMA on adaptive nets: {speedup}"
    );
}

#[test]
fn halo3d_rvma_beats_rdma_on_adaptive_network() {
    let cfg = small_halo();
    let spec = torus_spec(RoutingKind::Adaptive);
    let (_rdma, _rvma, speedup) = compare_protocols(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        1,
        |n| Box::new(Halo3dNode::new(cfg, n)) as Box<dyn HostLogic>,
    );
    assert!(speedup > 1.0, "halo3d speedup {speedup}");
}

#[test]
fn sweep3d_on_dragonfly_with_ugal_completes() {
    // 72-terminal dragonfly, 8x8 sweep grid fits in 64 nodes; idle extras.
    let cfg = Sweep3dConfig {
        pgrid: [8, 8],
        cells: [8, 8, 32],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_us(1),
        octants: 4,
    };
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    assert!(spec.terminals >= cfg.nodes());
    struct Idle;
    impl HostLogic for Idle {
        fn on_start(&mut self, api: &mut rvma_nic::TermApi<'_, '_>) {
            api.count("motif.nodes_done");
            let now = api.now();
            api.record_time(rvma_motifs::MOTIF_DONE_HIST, now);
        }
        fn on_recv(&mut self, _m: rvma_nic::RecvInfo, _api: &mut rvma_nic::TermApi<'_, '_>) {}
    }
    let nodes = cfg.nodes();
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rvma,
        3,
        |n| {
            if n < nodes {
                Box::new(Sweep3dNode::new(cfg, n)) as Box<dyn HostLogic>
            } else {
                Box::new(Idle) as Box<dyn HostLogic>
            }
        },
    );
    assert_eq!(r.nodes_done, spec.terminals as u64);
    assert_eq!(r.msgs_sent, cfg.total_messages());
}

#[test]
fn motif_runs_are_deterministic() {
    let cfg = small_sweep();
    let spec = hyperx_spec(RoutingKind::Adaptive);
    let run = || {
        run_motif(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rdma,
            7,
            |n| Box::new(Sweep3dNode::new(cfg, n)) as Box<dyn HostLogic>,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
}

#[test]
fn faster_links_shrink_halo_makespan() {
    let cfg = small_halo();
    let spec = torus_spec(RoutingKind::Static);
    let at = |gbps| {
        run_motif(
            &spec,
            &FabricConfig::at_gbps(gbps),
            NicConfig::default(),
            Protocol::Rvma,
            1,
            |n| Box::new(Halo3dNode::new(cfg, n)) as Box<dyn HostLogic>,
        )
        .makespan
    };
    assert!(at(400) < at(100));
}
