//! Motif-level parity: every motif, run on the parallel engine at 1/2/4/8
//! threads, must produce bit-identical results — final clock, events fired,
//! every counter, every histogram sample, and the merged event trace. The
//! fabrics use adaptive routing so the runs are rng-dependent: any
//! nondeterminism in shard scheduling would surface as diverging routes.

use rvma_motifs::{
    build_motif_engine, AllReduceConfig, AllReduceNode, Halo3dConfig, Halo3dNode, IdleNode,
    IncastConfig, IncastNode, KvConfig, KvNode, MotifResult, Sweep3dConfig, Sweep3dNode,
};
use rvma_net::fabric::{FabricConfig, TopologySpec};
use rvma_net::packet::NetEvent;
use rvma_net::router::RoutingKind;
use rvma_net::topology::{fattree, star, torus3d, FatTreeParams, TorusParams};
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::{ParEngine, SimConfig, SimTime, StatsRegistry, TraceEntry};

/// Everything observable about a finished run, bit-exact.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    now: SimTime,
    events: u64,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Vec<u64>)>,
    trace: Vec<TraceEntry>,
}

fn fingerprint(eng: &ParEngine<NetEvent>, events: u64) -> Fingerprint {
    let stats: &StatsRegistry = eng.stats();
    let mut counters: Vec<(String, u64)> = stats
        .counter_names()
        .map(|n| (n.to_string(), stats.counter_value(n)))
        .collect();
    counters.sort();
    let mut histograms: Vec<(String, Vec<u64>)> = stats
        .histogram_names()
        .map(|n| {
            let samples = stats
                .get_histogram(n)
                .map(|h| h.samples().iter().map(|s| s.to_bits()).collect())
                .unwrap_or_default();
            (n.to_string(), samples)
        })
        .collect();
    histograms.sort();
    Fingerprint {
        now: eng.now(),
        events,
        counters,
        histograms,
        trace: eng.merged_trace(),
    }
}

/// Run `logic` on `spec` at each thread count and demand identical output.
fn assert_parity(
    name: &str,
    spec: &TopologySpec,
    protocol: Protocol,
    logic: impl Fn(u32) -> Box<dyn HostLogic> + Copy,
) {
    let fcfg = FabricConfig::at_gbps(100);
    let ncfg = NicConfig::default();
    let run = |threads: usize| {
        let sim = SimConfig::new(threads, SimTime::from_us(1));
        let (mut eng, _nodes) =
            build_motif_engine(spec, &fcfg, ncfg, protocol, 42, sim, |n| logic(n));
        eng.enable_trace(1 << 18);
        let events = eng.run_to_completion();
        fingerprint(&eng, events)
    };
    let want = run(1);
    assert!(want.events > 0, "{name}: motif must actually run");
    assert!(
        want.counters
            .iter()
            .any(|(n, v)| n == "motif.nodes_done" && *v > 0),
        "{name}: nodes must finish"
    );
    for threads in [2, 4, 8] {
        let got = run(threads);
        assert_eq!(got, want, "{name} diverged at {threads} threads");
    }
}

/// Wrap a motif constructor, padding spare terminals with [`IdleNode`].
fn padded<F>(active: u32, f: F) -> impl Fn(u32) -> Box<dyn HostLogic> + Copy
where
    F: Fn(u32) -> Box<dyn HostLogic> + Copy,
{
    move |n| {
        if n < active {
            f(n)
        } else {
            Box::new(IdleNode)
        }
    }
}

#[test]
fn sweep3d_parity() {
    let cfg = Sweep3dConfig {
        pgrid: [2, 2],
        cells: [4, 4, 8],
        zblock: 4,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(200),
        octants: 2,
    };
    let spec = fattree(FatTreeParams { k: 4 }, RoutingKind::Adaptive);
    for protocol in [Protocol::Rvma, Protocol::Rdma] {
        assert_parity(
            "sweep3d",
            &spec,
            protocol,
            padded(4, move |n| Box::new(Sweep3dNode::new(cfg, n)) as _),
        );
    }
}

#[test]
fn halo3d_parity() {
    let cfg = Halo3dConfig {
        pgrid: [2, 2, 2],
        cells: [8, 8, 8],
        elem_bytes: 8,
        iters: 2,
        compute: SimTime::from_ns(500),
    };
    let spec = torus3d(
        TorusParams {
            dims: [2, 2, 2],
            tps: 1,
        },
        RoutingKind::Adaptive,
    );
    assert_parity("halo3d", &spec, Protocol::Rvma, move |n| {
        Box::new(Halo3dNode::new(cfg, n)) as _
    });
}

#[test]
fn incast_parity() {
    let cfg = IncastConfig {
        nodes: 9,
        msgs: 4,
        bytes: 4096,
    };
    let spec = star(9, RoutingKind::Adaptive);
    assert_parity("incast", &spec, Protocol::Rvma, move |n| {
        Box::new(IncastNode::new(cfg, n)) as _
    });
}

#[test]
fn allreduce_parity() {
    let cfg = AllReduceConfig {
        nodes: 8,
        bytes: 1 << 16,
        iters: 2,
        compute_per_chunk: SimTime::from_ns(500),
    };
    let spec = fattree(FatTreeParams { k: 4 }, RoutingKind::Adaptive);
    assert_parity(
        "allreduce",
        &spec,
        Protocol::Rvma,
        padded(8, move |n| Box::new(AllReduceNode::new(cfg, n)) as _),
    );
}

#[test]
fn kvstore_parity() {
    let cfg = KvConfig {
        nodes: 16,
        servers: 4,
        ops: 16,
        read_ratio: 0.75,
        value_bytes: 2048,
        keys: 256,
        zipf_s: 0.99,
        seed: 5,
    };
    let spec = fattree(FatTreeParams { k: 4 }, RoutingKind::Adaptive);
    for protocol in [Protocol::Rvma, Protocol::Rdma] {
        let c = cfg;
        assert_parity("kvstore", &spec, protocol, move |n| {
            Box::new(KvNode::new(c, n)) as _
        });
    }
}

/// `run_motif_par` is deterministic across thread counts at the summary
/// level too (the API most callers use).
#[test]
fn run_motif_par_summary_parity() {
    let cfg = IncastConfig {
        nodes: 9,
        msgs: 4,
        bytes: 4096,
    };
    let spec = star(9, RoutingKind::Adaptive);
    let run = |threads| -> MotifResult {
        rvma_motifs::run_motif_par(
            &spec,
            &FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rvma,
            42,
            SimConfig::new(threads, SimTime::from_us(1)),
            move |n| Box::new(IncastNode::new(cfg, n)) as _,
        )
    };
    let want = run(1);
    for threads in [2, 4, 8] {
        let got = run(threads);
        assert_eq!(got.makespan, want.makespan);
        assert_eq!(got.quiesce, want.quiesce);
        assert_eq!(got.events, want.events);
        assert_eq!(got.msgs_sent, want.msgs_sent);
        assert_eq!(got.packets, want.packets);
    }
}
