//! Simulated time and bandwidth units.
//!
//! [`SimTime`] is an absolute instant (or a duration — the arithmetic is the
//! same) measured in integer picoseconds. The paper's SST runs use a 5 GHz
//! event update frequency (200 ps resolution); picoseconds give us strictly
//! finer granularity with room for ~213 days of simulated time in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant or duration in simulated time, in integer picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Construct from a (possibly fractional) number of nanoseconds,
    /// rounding to the nearest picosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (fractional).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in microseconds (fractional).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A link or bus bandwidth, stored as bits per second.
///
/// Used to compute packet serialization delays:
/// `time = bytes * 8 / rate`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from gigabits per second (decimal, as network links are rated).
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Construct from terabits per second.
    #[inline]
    pub const fn from_tbps(tbps: u64) -> Self {
        Bandwidth(tbps * 1_000_000_000_000)
    }

    /// Raw rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in gigabits per second.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale the bandwidth by a rational factor (e.g. crossbar speedup 3/2).
    #[inline]
    pub const fn scale(self, num: u64, den: u64) -> Bandwidth {
        Bandwidth(self.0 * num / den)
    }

    /// Time to serialize `bytes` onto a medium of this bandwidth.
    ///
    /// Computed exactly in integer arithmetic, rounding up to the next
    /// picosecond so that back-to-back packets never overlap.
    #[inline]
    pub fn serialization_time(self, bytes: u64) -> SimTime {
        debug_assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        // ps = bits / (bps / 1e12) = bits * 1e12 / bps, rounded up.
        let ps = (bits * 1_000_000_000_000).div_ceil(self.0 as u128);
        SimTime(ps as u64)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}Tbps", self.0 / 1_000_000_000_000)
        } else if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!(a + b, SimTime::from_ns(130));
        assert_eq!(a - b, SimTime::from_ns(70));
        assert_eq!(a * 3, SimTime::from_ns(300));
        assert_eq!(a / 4, SimTime::from_ns(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn simtime_sum() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn simtime_from_f64_rounds() {
        assert_eq!(SimTime::from_ns_f64(1.5), SimTime::from_ps(1_500));
        assert_eq!(SimTime::from_ns_f64(0.0004), SimTime::from_ps(0));
        assert_eq!(SimTime::from_ns_f64(0.0006), SimTime::from_ps(1));
    }

    #[test]
    fn simtime_display_units() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_secs(5).to_string(), "5s");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn bandwidth_serialization_exact() {
        // 100 Gbps = 12.5 GB/s; 1250 bytes take exactly 100 ns.
        let bw = Bandwidth::from_gbps(100);
        assert_eq!(bw.serialization_time(1250), SimTime::from_ns(100));
        // 1 byte at 1 Gbps = 8 ns.
        let bw = Bandwidth::from_gbps(1);
        assert_eq!(bw.serialization_time(1), SimTime::from_ns(8));
    }

    #[test]
    fn bandwidth_serialization_rounds_up() {
        // 3 bytes at 7 bps: 24 bits / 7 bps = 3.428... s -> must round up.
        let bw = Bandwidth::from_bps(7);
        let t = bw.serialization_time(3);
        assert!(t >= SimTime::from_ns_f64(24.0 / 7.0 * 1e9));
    }

    #[test]
    fn bandwidth_scale_crossbar() {
        // Paper: crossbar bandwidth is always 50% greater than link bandwidth.
        let link = Bandwidth::from_gbps(400);
        assert_eq!(link.scale(3, 2), Bandwidth::from_gbps(600));
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(100).to_string(), "100Gbps");
        assert_eq!(Bandwidth::from_tbps(2).to_string(), "2Tbps");
    }

    #[test]
    fn zero_bytes_serialize_instantly() {
        assert_eq!(
            Bandwidth::from_gbps(100).serialization_time(0),
            SimTime::ZERO
        );
    }
}
