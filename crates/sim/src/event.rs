//! The time-ordered event queue.
//!
//! Events are ordered by `(time, sequence number)`: the sequence number is a
//! monotonically increasing tiebreaker so that events scheduled for the same
//! instant fire in the order they were scheduled. This makes the whole
//! simulation deterministic — a property DESIGN.md lists as an invariant and
//! the integration tests check by comparing full event traces across runs.
//!
//! Internally the queue is a bucketed *calendar queue* (Brown 1988): pending
//! events hash into `nbuckets` day-slots by `time >> width_shift`, the pop
//! cursor walks days forward, and each bucket keeps its residents in a small
//! binary heap so same-day events still pop in exact `(time, seq)` order.
//! At simulator event densities push and pop are O(1) amortized versus the
//! O(log n) of one global heap, and the extracted order is identical — the
//! differential tests below drive both against each other.
//!
//! For the parallel engine each shard owns a queue constructed with
//! [`EventQueue::with_seq_stream`]: shard `s` of `S` draws sequence numbers
//! `first + s`, `first + s + S`, … so shards allocate from disjoint seq
//! classes and the global `(time, seq)` order is independent of how many
//! worker threads drive them.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event sitting in the queue: fire `payload` at `time` on `target`.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// Absolute simulated instant at which the event fires.
    pub time: SimTime,
    /// Insertion sequence number; tiebreaker for same-instant events.
    pub seq: u64,
    /// Component the event is delivered to.
    pub target: ComponentId,
    /// The event payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Initial number of day-buckets (power of two).
const INITIAL_BUCKETS: usize = 4;
/// Hard cap on bucket count; past this, buckets just get deeper (still a
/// heap per bucket, so correctness is unaffected).
const MAX_BUCKETS: usize = 1 << 14;
/// Initial bucket width: 2^13 ps ≈ 8 ns, on the order of one packet
/// serialization at 100 Gbps.
const INITIAL_WIDTH_SHIFT: u32 = 13;

/// A deterministic min-queue of scheduled events.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Day-buckets; `buckets.len()` is a power of two.
    buckets: Vec<BinaryHeap<ScheduledEvent<E>>>,
    /// Bucket width is `1 << width_shift` picoseconds.
    width_shift: u32,
    /// The day (`time >> width_shift`) the pop cursor is currently on. Never
    /// exceeds the day of any resident event.
    current_day: u64,
    /// Resident event count.
    len: usize,
    /// Next sequence number to hand out.
    next_seq: u64,
    /// Distance between consecutive handed-out sequence numbers.
    seq_stride: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the dense seq stream `0, 1, 2, …`.
    pub fn new() -> Self {
        Self::with_seq_stream(0, 1)
    }

    /// An empty queue handing out sequence numbers `first, first + stride,
    /// first + 2·stride, …` — used by the parallel engine to give each shard
    /// a disjoint seq class.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn with_seq_stream(first: u64, stride: u64) -> Self {
        assert!(stride > 0, "seq stride must be positive");
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            width_shift: INITIAL_WIDTH_SHIFT,
            current_day: 0,
            len: 0,
            next_seq: first,
            seq_stride: stride,
            scheduled_total: 0,
        }
    }

    /// Hand out the next sequence number from this queue's stream without
    /// enqueueing anything (the parallel engine uses this to stamp events
    /// that travel to another shard's queue).
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += self.seq_stride;
        seq
    }

    /// Schedule `payload` to fire on `target` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: E) {
        let seq = self.alloc_seq();
        self.push_sequenced(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Enqueue an event whose sequence number was assigned elsewhere (setup
    /// events and cross-shard arrivals in the parallel engine).
    pub fn push_sequenced(&mut self, ev: ScheduledEvent<E>) {
        self.scheduled_total += 1;
        if self.len + 1 > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
        // A peek may have parked the cursor on a far-future day; a later
        // push below it (legal after a deadline-bounded run) pulls it back
        // so the day walk never skips an earlier event.
        self.current_day = self.current_day.min(ev.time.as_ps() >> self.width_shift);
        let idx = self.bucket_of(ev.time);
        self.buckets[idx].push(ev);
        self.len += 1;
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let idx = self.min_bucket()?;
        let ev = self.buckets[idx].pop().expect("min_bucket found an event");
        self.len -= 1;
        Some(ev)
    }

    /// Instant of the earliest pending event.
    ///
    /// Takes `&mut self` because locating the minimum may advance the
    /// calendar's day cursor (the answer itself is not modified).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.min_bucket()?;
        Some(self.buckets[idx].peek().expect("non-empty bucket").time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (fired or pending).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    fn bucket_of(&self, time: SimTime) -> usize {
        ((time.as_ps() >> self.width_shift) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Find the bucket holding the earliest event and park `current_day` on
    /// that event's day. Walks day-by-day from the cursor; after a full lap
    /// without a hit (a gap wider than one calendar year) falls back to a
    /// direct scan of all buckets.
    fn min_bucket(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        for _ in 0..nbuckets {
            let idx = (self.current_day & (nbuckets - 1)) as usize;
            if let Some(ev) = self.buckets[idx].peek() {
                if ev.time.as_ps() >> self.width_shift == self.current_day {
                    return Some(idx);
                }
            }
            self.current_day += 1;
        }
        // Sparse region: scan every bucket head for the global minimum.
        let (idx, ev) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.peek().map(|e| (i, e)))
            .min_by(|(_, a), (_, b)| (a.time, a.seq).cmp(&(b.time, b.seq)))
            .expect("len > 0 but all buckets empty");
        self.current_day = ev.time.as_ps() >> self.width_shift;
        Some(idx)
    }

    /// Double the bucket count and re-fit the bucket width to the observed
    /// event density, then rehash all residents. Deterministic: depends only
    /// on the resident set.
    fn resize(&mut self) {
        let new_n = (self.buckets.len() * 2).min(MAX_BUCKETS);
        let mut all: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain());
        }
        if let (Some(min), Some(max)) = (
            all.iter().map(|e| e.time.as_ps()).min(),
            all.iter().map(|e| e.time.as_ps()).max(),
        ) {
            if max > min && all.len() > 1 {
                // Brown's rule of thumb: width ≈ a few times the mean gap,
                // so a same-density stream keeps ~O(1) events per day.
                let mean_gap = (max - min) / all.len() as u64;
                let target = mean_gap.saturating_mul(4).max(1);
                self.width_shift = (64 - target.leading_zeros()).clamp(1, 40);
            }
        }
        self.buckets = (0..new_n).map(|_| BinaryHeap::new()).collect();
        // Re-anchor the cursor on the earliest resident's day (the width may
        // have changed, so recompute rather than shift the old cursor).
        self.current_day = all
            .iter()
            .map(|e| e.time.as_ps() >> self.width_shift)
            .min()
            .unwrap_or(0);
        for ev in all {
            let idx = self.bucket_of(ev.time);
            self.buckets[idx].push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(i: usize) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), cid(0), "c");
        q.push(SimTime::from_ns(10), cid(0), "a");
        q.push(SimTime::from_ns(20), cid(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.push(t, cid(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(50), cid(1), ());
        q.push(SimTime::from_ns(7), cid(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
    }

    #[test]
    fn counts() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, cid(0), ());
        q.push(SimTime::ZERO, cid(0), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn strided_seq_stream() {
        let mut q = EventQueue::<()>::with_seq_stream(7, 16);
        assert_eq!(q.alloc_seq(), 7);
        assert_eq!(q.alloc_seq(), 23);
        q.push(SimTime::ZERO, cid(0), ());
        let ev = q.pop().unwrap();
        assert_eq!(ev.seq, 39);
    }

    #[test]
    fn sequenced_pushes_interleave_by_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(1);
        for seq in [5u64, 1, 3] {
            q.push_sequenced(ScheduledEvent {
                time: t,
                seq,
                target: cid(0),
                payload: seq,
            });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn sparse_far_future_events() {
        // Gaps far wider than a calendar year exercise the direct-scan path.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(40), cid(0), "later");
        q.push(SimTime::from_ps(3), cid(0), "soon");
        q.push(SimTime::from_secs(90), cid(0), "latest");
        assert_eq!(q.pop().unwrap().payload, "soon");
        assert_eq!(q.pop().unwrap().payload, "later");
        assert_eq!(q.pop().unwrap().payload, "latest");
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Simulation-shaped usage: pops interleaved with pushes at
        // monotonically increasing times, across several resizes.
        let mut q = EventQueue::new();
        let mut reference = Vec::new();
        let mut t = 0u64;
        for i in 0..2000u64 {
            t += (i * 2654435761) % 5000;
            q.push(SimTime::from_ps(t), cid(0), i);
            reference.push((SimTime::from_ps(t), i));
            if i % 3 == 0 {
                let ev = q.pop().unwrap();
                reference.sort();
                let (rt, ri) = reference.remove(0);
                assert_eq!((ev.time, ev.payload), (rt, ri));
            }
        }
        reference.sort();
        for (rt, ri) in reference {
            let ev = q.pop().unwrap();
            assert_eq!((ev.time, ev.payload), (rt, ri));
        }
        assert!(q.is_empty());
    }

    /// Differential check against one global binary heap: identical pop
    /// sequence for an adversarial mix of clustered and sparse times.
    #[test]
    fn matches_reference_heap() {
        let mut q = EventQueue::new();
        let mut heap: BinaryHeap<ScheduledEvent<u64>> = BinaryHeap::new();
        let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
        let mut seq = 0u64;
        for round in 0..50 {
            for _ in 0..40 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Cluster most events near "now", some far out.
                let far = if x.is_multiple_of(7) {
                    10_000_000
                } else {
                    3_000
                };
                let t = (round * 10_000) + (x % far);
                q.push(SimTime::from_ps(t), cid(0), seq);
                heap.push(ScheduledEvent {
                    time: SimTime::from_ps(t),
                    seq,
                    target: cid(0),
                    payload: seq,
                });
                seq += 1;
            }
            for _ in 0..20 {
                let a = q.pop().map(|e| (e.time, e.seq));
                let b = heap.pop().map(|e| (e.time, e.seq));
                assert_eq!(a, b);
            }
        }
        loop {
            let a = q.pop().map(|e| (e.time, e.seq));
            let b = heap.pop().map(|e| (e.time, e.seq));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
