//! The time-ordered event queue.
//!
//! Events are ordered by `(time, sequence number)`: the sequence number is a
//! monotonically increasing tiebreaker so that events scheduled for the same
//! instant fire in the order they were scheduled. This makes the whole
//! simulation deterministic — a property DESIGN.md lists as an invariant and
//! the integration tests check by comparing full event traces across runs.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event sitting in the queue: fire `payload` at `time` on `target`.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// Absolute simulated instant at which the event fires.
    pub time: SimTime,
    /// Insertion sequence number; tiebreaker for same-instant events.
    pub seq: u64,
    /// Component the event is delivered to.
    pub target: ComponentId,
    /// The event payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of scheduled events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` to fire on `target` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (fired or pending).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(i: usize) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), cid(0), "c");
        q.push(SimTime::from_ns(10), cid(0), "a");
        q.push(SimTime::from_ns(20), cid(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.push(t, cid(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(50), cid(1), ());
        q.push(SimTime::from_ns(7), cid(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
    }

    #[test]
    fn counts() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, cid(0), ());
        q.push(SimTime::ZERO, cid(0), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }
}
