//! Bounded event tracing for simulation debugging.
//!
//! When enabled on an [`Engine`](crate::Engine), every dispatched event
//! appends a [`TraceEntry`] to a fixed-capacity ring. The ring keeps the
//! *most recent* events — when a simulation deadlocks or produces a wrong
//! number, the tail of the trace is what you want.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::collections::VecDeque;

/// One dispatched event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Instant the event fired.
    pub time: SimTime,
    /// Component it was delivered to.
    pub target: ComponentId,
    /// Global dispatch sequence number (0 = first event ever fired).
    pub seq: u64,
}

/// A fixed-capacity ring of recent [`TraceEntry`]s.
#[derive(Debug)]
pub struct TraceRing {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring keeping the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRing {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append an entry, evicting the oldest beyond capacity.
    pub fn push(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent entry.
    pub fn last(&self) -> Option<&TraceEntry> {
        self.entries.back()
    }

    /// Render the tail of the trace (up to `n` entries) for diagnostics.
    pub fn tail_report(&self, n: usize) -> String {
        let mut out = String::new();
        let skip = self.entries.len().saturating_sub(n);
        for e in self.entries.iter().skip(skip) {
            out.push_str(&format!("#{} @{} -> {:?}\n", e.seq, e.time, e.target));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_ns(seq * 10),
            target: ComponentId::from_raw(seq as usize % 3),
            seq,
        }
    }

    #[test]
    fn keeps_most_recent() {
        let mut r = TraceRing::new(3);
        for s in 0..5 {
            r.push(entry(s));
        }
        let seqs: Vec<u64> = r.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.last().unwrap().seq, 4);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty_ring() {
        let r = TraceRing::new(4);
        assert!(r.is_empty());
        assert!(r.last().is_none());
        assert_eq!(r.tail_report(5), "");
    }

    #[test]
    fn tail_report_formats() {
        let mut r = TraceRing::new(8);
        r.push(entry(0));
        r.push(entry(1));
        let rep = r.tail_report(1);
        assert!(rep.contains("#1"));
        assert!(!rep.contains("#0"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        TraceRing::new(0);
    }
}
