//! The simulation engine: component registry + event loop.
//!
//! [`Engine<E>`] is generic over the event payload type `E`, so each layer of
//! the reproduction (network, NIC, motif runner) defines one message enum and
//! instantiates the engine with it. Components are owned by the engine and
//! addressed by [`ComponentId`]; during event delivery a component receives a
//! [`Ctx`] that can schedule further events, read the clock, and draw from
//! the engine's deterministic RNG.

use crate::event::EventQueue;
use crate::rng::SimRng;
use crate::stats::StatsRegistry;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceRing};
use std::any::Any;
use std::fmt;

/// Index of a component registered with an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Construct from a raw index. Only meaningful for ids previously handed
    /// out by [`Engine::add_component`] (or in tests).
    pub const fn from_raw(i: usize) -> Self {
        ComponentId(i)
    }

    /// The raw index.
    pub const fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A simulated entity that reacts to events.
pub trait Component<E> {
    /// Deliver `ev` to the component at the current simulated instant.
    fn handle(&mut self, ev: E, ctx: &mut Ctx<'_, E>);

    /// Downcast support: return `self` as [`Any`] to let harness code read
    /// results back after a run (see [`Engine::component_as`]). The default
    /// opts out; concrete components override with `Some(self)`.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// Mutable counterpart of [`Component::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// Destination for events emitted while handling an event.
///
/// The sequential [`Engine`] plugs its own [`EventQueue`] in here; the
/// parallel engine plugs in a per-shard sink that routes local events to the
/// shard's queue and cross-shard events into ring mailboxes. Components only
/// ever see [`Ctx`], so the same model code runs on both engines.
pub trait EventSink<E> {
    /// Enqueue `payload` to fire on `target` at absolute instant `time`.
    fn emit(&mut self, time: SimTime, target: ComponentId, payload: E);
}

impl<E> EventSink<E> for EventQueue<E> {
    fn emit(&mut self, time: SimTime, target: ComponentId, payload: E) {
        self.push(time, target, payload);
    }
}

/// Everything a component may touch while handling an event.
pub struct Ctx<'a, E> {
    now: SimTime,
    self_id: ComponentId,
    sink: &'a mut dyn EventSink<E>,
    rng: &'a mut SimRng,
    stats: &'a mut StatsRegistry,
    stop_requested: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Assemble a dispatch context (used by both engine drivers).
    pub(crate) fn new(
        now: SimTime,
        self_id: ComponentId,
        sink: &'a mut dyn EventSink<E>,
        rng: &'a mut SimRng,
        stats: &'a mut StatsRegistry,
        stop_requested: &'a mut bool,
    ) -> Self {
        Ctx {
            now,
            self_id,
            sink,
            rng,
            stats,
            stop_requested,
        }
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Id of the component currently handling the event.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedule `payload` on `target` after `delay` (relative to now).
    pub fn schedule_in(&mut self, delay: SimTime, target: ComponentId, payload: E) {
        self.sink.emit(self.now + delay, target, payload);
    }

    /// Schedule `payload` on `target` at an absolute instant, which must not
    /// be in the past.
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, payload: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.sink.emit(at.max(self.now), target, payload);
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The engine's stats registry.
    pub fn stats(&mut self) -> &mut StatsRegistry {
        self.stats
    }

    /// Ask the engine to stop after this event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Construction-time API shared by the sequential [`Engine`] and the
/// parallel engine ([`crate::ParEngine`]).
///
/// Fabric/cluster builders are generic over this trait so the same wiring
/// code populates either engine. Components must be `Send` because the
/// parallel engine moves them onto worker threads.
pub trait SimBuilder<E> {
    /// Register a component, returning its id.
    fn register(&mut self, c: Box<dyn Component<E> + Send>) -> ComponentId;

    /// Number of registered components.
    fn registered(&self) -> usize;

    /// Schedule an event from setup code (outside any component).
    fn seed_event(&mut self, at: SimTime, target: ComponentId, payload: E);

    /// Convenience: register an unboxed component.
    fn register_component<C>(&mut self, c: C) -> ComponentId
    where
        C: Component<E> + Send + 'static,
        Self: Sized,
    {
        self.register(Box::new(c))
    }
}

impl<E> SimBuilder<E> for Engine<E> {
    fn register(&mut self, c: Box<dyn Component<E> + Send>) -> ComponentId {
        self.add_boxed(c)
    }

    fn registered(&self) -> usize {
        self.component_count()
    }

    fn seed_event(&mut self, at: SimTime, target: ComponentId, payload: E) {
        self.schedule(at, target, payload);
    }
}

/// The simulation engine. See the crate docs for a usage example.
pub struct Engine<E> {
    components: Vec<Option<Box<dyn Component<E>>>>,
    queue: EventQueue<E>,
    now: SimTime,
    rng: SimRng,
    stats: StatsRegistry,
    events_fired: u64,
    stop_requested: bool,
    trace: Option<TraceRing>,
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            components: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            stats: StatsRegistry::new(),
            events_fired: 0,
            stop_requested: false,
            trace: None,
        }
    }

    /// Record the last `capacity` dispatched events for debugging; read
    /// back with [`Engine::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// The trace ring, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Register a component, returning its id.
    pub fn add_component<C: Component<E> + 'static>(&mut self, c: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(c)));
        id
    }

    /// Register a boxed component, returning its id.
    pub fn add_boxed(&mut self, c: Box<dyn Component<E>>) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(c));
        id
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Immutable access to a component (e.g. to read results after a run).
    ///
    /// # Panics
    /// Panics if the id is out of range or the component is mid-dispatch.
    pub fn component(&self, id: ComponentId) -> &dyn Component<E> {
        self.components[id.0]
            .as_deref()
            .expect("component checked out during dispatch")
    }

    /// Mutable access to a component.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut (dyn Component<E> + 'static) {
        self.components[id.0]
            .as_deref_mut()
            .expect("component checked out during dispatch")
    }

    /// Downcast a component to its concrete type, if it implements
    /// [`Component::as_any`]. Lets tests and harnesses read results back
    /// without rebuilding the engine.
    pub fn component_as<C: 'static>(&self, id: ComponentId) -> Option<&C> {
        self.component(id).as_any()?.downcast_ref::<C>()
    }

    /// Mutable counterpart of [`Engine::component_as`] (e.g. to wire peer
    /// ids after registration).
    pub fn component_as_mut<C: 'static>(&mut self, id: ComponentId) -> Option<&mut C> {
        self.component_mut(id).as_any_mut()?.downcast_mut::<C>()
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// The engine's stats registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Mutable stats registry (for pre-registering counters).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// Schedule an event from outside component context (setup code).
    pub fn schedule(&mut self, at: SimTime, target: ComponentId, payload: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at.max(self.now), target, payload);
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events ever scheduled (fired or pending). At quiesce the
    /// conservation invariant holds:
    /// `scheduled_total == events_fired + pending_events`.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Fire the single earliest event. Returns `false` if the queue is empty.
    ///
    /// # Panics
    /// Panics if an event targets a component id that was never registered,
    /// or if a component (transitively) delivers an event to itself while
    /// already dispatching — neither occurs in a well-formed model.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.events_fired += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                time: ev.time,
                target: ev.target,
                seq: self.events_fired - 1,
            });
        }

        // Check the component out of the registry so the borrow of
        // `self.queue`/`self.rng` inside Ctx doesn't alias it.
        let mut comp = self.components[ev.target.0]
            .take()
            .unwrap_or_else(|| panic!("event for unregistered/active component {:?}", ev.target));
        {
            let mut ctx = Ctx::new(
                self.now,
                ev.target,
                &mut self.queue,
                &mut self.rng,
                &mut self.stats,
                &mut self.stop_requested,
            );
            comp.handle(ev.payload, &mut ctx);
        }
        self.components[ev.target.0] = Some(comp);
        true
    }

    /// Run until the queue drains or a component requests a stop.
    /// Returns the number of events fired by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.events_fired;
        while !self.stop_requested && self.step() {}
        self.stop_requested = false;
        self.events_fired - start
    }

    /// Run until the queue drains, a stop is requested, or the clock would
    /// pass `deadline`. Events at exactly `deadline` still fire.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.events_fired;
        while !self.stop_requested {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.stop_requested = false;
        self.events_fired - start
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("fired", &self.events_fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Stop,
    }

    struct Echo {
        peer: Option<ComponentId>,
        received: Vec<u32>,
        max_hops: u32,
    }

    impl Component<Msg> for Echo {
        fn handle(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                Msg::Ping(h) => {
                    self.received.push(h);
                    if h < self.max_hops {
                        if let Some(p) = self.peer {
                            ctx.schedule_in(SimTime::from_ns(100), p, Msg::Ping(h + 1));
                        }
                    }
                }
                Msg::Stop => ctx.request_stop(),
            }
        }

        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }

        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn echo(max_hops: u32) -> Echo {
        Echo {
            peer: None,
            received: vec![],
            max_hops,
        }
    }

    fn echo_pair() -> (Engine<Msg>, ComponentId, ComponentId) {
        let mut e = Engine::new(1);
        let a = e.add_component(echo(6));
        let b = e.add_component(echo(6));
        // Wire peers after registration via downcast.
        e.component_as_mut::<Echo>(a).expect("echo").peer = Some(b);
        e.component_as_mut::<Echo>(b).expect("echo").peer = Some(a);
        (e, a, b)
    }

    #[test]
    fn ping_pong_advances_clock() {
        let (mut e, a, _b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        let fired = e.run_to_completion();
        assert_eq!(fired, 7); // hops 0..=6
        assert_eq!(e.now(), SimTime::from_ns(600));
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut e, a, _b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.run_until(SimTime::from_ns(250));
        assert_eq!(e.now(), SimTime::from_ns(200));
        assert!(e.pending_events() > 0);
        // Resume to completion.
        e.run_to_completion();
        assert_eq!(e.now(), SimTime::from_ns(600));
    }

    #[test]
    fn events_at_deadline_fire() {
        let (mut e, a, _b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.run_until(SimTime::from_ns(200));
        assert_eq!(e.now(), SimTime::from_ns(200));
    }

    #[test]
    fn stop_request_halts_loop() {
        let (mut e, a, b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.schedule(SimTime::from_ns(150), b, Msg::Stop);
        e.run_to_completion();
        // Stopped mid-exchange: at most events up to t=150 plus the Stop fired.
        assert!(e.now() <= SimTime::from_ns(150));
        assert!(e.pending_events() > 0);
        // A later run resumes (stop flag was consumed).
        e.run_to_completion();
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut e: Engine<Msg> = Engine::new(0);
        assert!(!e.step());
    }

    #[test]
    fn trace_records_dispatches() {
        let (mut e, a, _b) = echo_pair();
        e.enable_trace(4);
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.run_to_completion(); // 7 events; ring keeps the last 4
        let trace = e.trace().expect("enabled");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 3);
        let seqs: Vec<u64> = trace.entries().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        assert_eq!(trace.last().unwrap().time, SimTime::from_ns(600));
    }

    #[test]
    fn trace_disabled_by_default() {
        let e: Engine<Msg> = Engine::new(0);
        assert!(e.trace().is_none());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut e, a, _b) = echo_pair();
            e.schedule(SimTime::ZERO, a, Msg::Ping(0));
            e.run_to_completion();
            (e.now(), e.events_fired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn downcast_reads_results_back() {
        let (mut e, a, b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.run_to_completion();
        // Hops 0, 2, 4, 6 land on `a`; 1, 3, 5 on `b`.
        assert_eq!(
            e.component_as::<Echo>(a).unwrap().received,
            vec![0, 2, 4, 6]
        );
        assert_eq!(e.component_as::<Echo>(b).unwrap().received, vec![1, 3, 5]);
        // Wrong concrete type yields None rather than a panic.
        assert!(e.component_as::<u32>(a).is_none());
    }

    /// Components that don't override `as_any` simply opt out of downcasts.
    #[test]
    fn downcast_default_opts_out() {
        struct Opaque;
        impl Component<Msg> for Opaque {
            fn handle(&mut self, _ev: Msg, _ctx: &mut Ctx<'_, Msg>) {}
        }
        let mut e: Engine<Msg> = Engine::new(0);
        let id = e.add_component(Opaque);
        assert!(e.component_as::<Opaque>(id).is_none());
    }

    /// Conservation: every event ever scheduled is either fired or pending.
    #[test]
    fn conservation_at_quiesce() {
        let (mut e, a, b) = echo_pair();
        e.schedule(SimTime::ZERO, a, Msg::Ping(0));
        e.schedule(SimTime::from_ns(150), b, Msg::Stop);
        e.run_to_completion(); // halts on the stop with events still queued
        assert_eq!(
            e.scheduled_total(),
            e.events_fired() + e.pending_events() as u64
        );
        e.run_to_completion(); // drain the rest
        assert_eq!(e.pending_events(), 0);
        assert_eq!(e.scheduled_total(), e.events_fired());
    }

    #[test]
    fn builder_trait_matches_inherent_api() {
        let mut e: Engine<Msg> = Engine::new(3);
        let a = SimBuilder::register_component(&mut e, echo(1));
        assert_eq!(e.registered(), 1);
        e.seed_event(SimTime::ZERO, a, Msg::Ping(0));
        e.run_to_completion();
        assert_eq!(e.component_as::<Echo>(a).unwrap().received, vec![0]);
    }
}
