//! Parallel discrete-event engine: sharded conservative-window execution.
//!
//! [`ParEngine`] partitions components into `SimConfig::shards` logical
//! shards, each owning its own event queue, RNG stream, stats registry, and
//! trace ring. Worker threads advance all shards in lockstep *conservative
//! windows*: every round the workers agree on the global minimum pending
//! time `W` and then independently process events in `[W, W + window)`.
//! Cross-shard events travel through bounded lock-free MPSC rings
//! ([`crate::ring::EventRing`]) that are only drained at window barriers —
//! which is safe precisely because the window never exceeds the model's
//! *lookahead* (the minimum cross-component latency): an event emitted to
//! another shard always fires at or after the current window's end, and the
//! sink asserts it.
//!
//! # Determinism
//!
//! Results are bit-identical for any worker thread count, because every
//! source of ordering is tied to the *fixed* logical shard count, never to
//! the thread count:
//!
//! - **Sequence numbers.** Shard `s` of `S` allocates seqs `base + s`,
//!   `base + s + S`, … (`base` clears the densely-numbered setup events), so
//!   shards draw from disjoint residue classes and the global `(time, seq)`
//!   total order is independent of which thread stamped the event. Events
//!   pop in exactly that order within a shard, so insertion races (mailbox
//!   drain order) are invisible.
//! - **RNG.** Shard `s` uses a `SimRng` forked from the root seed in shard
//!   order; a component always draws from its own shard's stream.
//! - **Stats and traces.** Collected per shard, merged in shard-id order.
//!
//! The parity suites (`crates/sim/tests/parallel_parity.rs` and the motif
//! suite) prove this by comparing clocks, counters, histogram samples, and
//! merged traces across 1/2/4/8 threads.

use crate::engine::{Component, ComponentId, Ctx, EventSink, SimBuilder};
use crate::event::{EventQueue, ScheduledEvent};
use crate::ring::EventRing;
use crate::rng::SimRng;
use crate::stats::StatsRegistry;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceRing};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel-execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Worker threads (clamped to the shard count; 1 = no extra threads).
    pub threads: usize,
    /// Conservative window width. Must not exceed the model's lookahead —
    /// the minimum cross-shard event latency (for the network fabric, the
    /// minimum link propagation latency). Violations panic at emit time.
    pub window: SimTime,
    /// Logical shard count. This — not `threads` — is the unit of
    /// determinism: changing it changes seq/RNG stream assignment and thus
    /// legitimately produces a different (still valid) execution. Keep it
    /// fixed while varying `threads` to get bit-identical runs.
    pub shards: usize,
    /// Per-shard mailbox ring capacity; bursts beyond it spill to a mutex
    /// (correct, slower — see [`ParEngine::mailbox_spills`]).
    pub mailbox_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: 1,
            window: SimTime::from_ns(100),
            shards: 16,
            mailbox_capacity: 4096,
        }
    }
}

impl SimConfig {
    /// A config running `threads` workers with window `window` and the
    /// default shard count.
    pub fn new(threads: usize, window: SimTime) -> Self {
        SimConfig {
            threads,
            window,
            ..SimConfig::default()
        }
    }
}

/// One logical shard: a slice of the component space plus everything needed
/// to advance it independently for one window.
struct Shard<E> {
    id: usize,
    queue: EventQueue<E>,
    rng: SimRng,
    stats: StatsRegistry,
    trace: Option<TraceRing>,
    components: Vec<Option<Box<dyn Component<E> + Send>>>,
    now: SimTime,
    fired: u64,
    stop: bool,
}

/// Cross-shard mailbox: lock-free ring with a mutex overflow side-channel.
struct Mailbox<E> {
    ring: EventRing<ScheduledEvent<E>>,
    overflow: Mutex<Vec<ScheduledEvent<E>>>,
    spills: AtomicU64,
}

impl<E> Mailbox<E> {
    fn new(capacity: usize) -> Self {
        Mailbox {
            ring: EventRing::with_capacity(capacity),
            overflow: Mutex::new(Vec::new()),
            spills: AtomicU64::new(0),
        }
    }
}

/// Sense-reversing spin barrier whose last arriver runs a closure before
/// releasing the others. `poison` unblocks every waiter permanently (used
/// when a worker panics so the rest don't spin forever).
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Wait for all `n` threads; the last arriver runs `leader` inside the
    /// barrier. Returns `false` if the barrier was poisoned.
    fn wait_leader(&self, leader: impl FnOnce()) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            leader();
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        !self.poisoned.load(Ordering::Acquire)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// Shared coordination state for one `run_*` call.
struct Control {
    barrier: SpinBarrier,
    /// Exclusive end (ps) of the window being processed.
    window_end_ps: AtomicU64,
    done: AtomicBool,
    stop: AtomicBool,
    /// Per-shard earliest pending time (ps; `u64::MAX` = empty), published
    /// after each drain phase.
    next_time: Vec<AtomicU64>,
    cross_sent: AtomicU64,
    cross_recvd: AtomicU64,
    /// Per-round conservation sums (debug builds only).
    dbg_scheduled: AtomicU64,
    dbg_fired: AtomicU64,
    dbg_pending: AtomicU64,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Control {
    fn new(threads: usize, shards: usize) -> Self {
        Control {
            barrier: SpinBarrier::new(threads),
            window_end_ps: AtomicU64::new(0),
            done: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            next_time: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            cross_sent: AtomicU64::new(0),
            cross_recvd: AtomicU64::new(0),
            dbg_scheduled: AtomicU64::new(0),
            dbg_fired: AtomicU64::new(0),
            dbg_pending: AtomicU64::new(0),
            panic_payload: Mutex::new(None),
        }
    }
}

/// Read-only state shared by every worker during one run.
struct RunShared<'a, E> {
    mailboxes: &'a [Mailbox<E>],
    ctl: &'a Control,
    shard_of: &'a [usize],
    slot: &'a [(usize, usize)],
    window_ps: u64,
    deadline_ps: u64,
}

/// Per-shard event sink: local events go straight into the shard's queue,
/// cross-shard events are stamped with the shard's next seq and pushed into
/// the destination mailbox.
struct ShardSink<'a, E> {
    shard_id: usize,
    queue: &'a mut EventQueue<E>,
    mailboxes: &'a [Mailbox<E>],
    ctl: &'a Control,
    shard_of: &'a [usize],
    window_end_ps: u64,
}

impl<E> EventSink<E> for ShardSink<'_, E> {
    fn emit(&mut self, time: SimTime, target: ComponentId, payload: E) {
        let dest = self.shard_of[target.as_usize()];
        let seq = self.queue.alloc_seq();
        let ev = ScheduledEvent {
            time,
            seq,
            target,
            payload,
        };
        if dest == self.shard_id {
            self.queue.push_sequenced(ev);
            return;
        }
        // The conservative-window contract: anything leaving the shard must
        // land at or after the end of the window being processed, otherwise
        // the destination shard may already have advanced past it.
        assert!(
            time.as_ps() >= self.window_end_ps,
            "lookahead violation: cross-shard event at {} inside the current \
             window (ends {}); SimConfig::window must not exceed the minimum \
             cross-shard latency",
            time,
            SimTime::from_ps(self.window_end_ps),
        );
        self.ctl.cross_sent.fetch_add(1, Ordering::Relaxed);
        let mb = &self.mailboxes[dest];
        if let Err((_, ev)) = mb.ring.try_push(ev) {
            mb.spills.fetch_add(1, Ordering::Relaxed);
            mb.overflow.lock().expect("overflow lock").push(ev);
        }
    }
}

/// The parallel simulation engine. Mirrors the [`crate::Engine`] surface
/// (schedule / run_to_completion / run_until / stats / trace) and adds
/// thread/window/shard configuration. See the module docs for the
/// synchronization and determinism scheme.
pub struct ParEngine<E> {
    seed: u64,
    cfg: SimConfig,
    /// Pre-freeze component staging area.
    staging: Vec<Box<dyn Component<E> + Send>>,
    /// Pre-freeze externally scheduled events (dense seqs `0..`).
    setup: Vec<ScheduledEvent<E>>,
    setup_seq: u64,
    /// Explicit component→shard map (set before the first run).
    partition: Option<Vec<usize>>,
    /// Populated at freeze time.
    shards: Vec<Shard<E>>,
    shard_of: Vec<usize>,
    /// component id → (shard, index within shard).
    slot: Vec<(usize, usize)>,
    frozen: bool,
    now: SimTime,
    events_fired: u64,
    merged_stats: StatsRegistry,
    trace_capacity: Option<usize>,
    cross_events: u64,
    spills: u64,
}

impl<E: Send> ParEngine<E> {
    /// A fresh parallel engine at time zero.
    pub fn new(seed: u64, cfg: SimConfig) -> Self {
        ParEngine {
            seed,
            cfg,
            staging: Vec::new(),
            setup: Vec::new(),
            setup_seq: 0,
            partition: None,
            shards: Vec::new(),
            shard_of: Vec::new(),
            slot: Vec::new(),
            frozen: false,
            now: SimTime::ZERO,
            events_fired: 0,
            merged_stats: StatsRegistry::new(),
            trace_capacity: None,
            cross_events: 0,
            spills: 0,
        }
    }

    /// Register a component, returning its id.
    pub fn add_component<C: Component<E> + Send + 'static>(&mut self, c: C) -> ComponentId {
        self.add_boxed(Box::new(c))
    }

    /// Register a boxed component, returning its id.
    pub fn add_boxed(&mut self, c: Box<dyn Component<E> + Send>) -> ComponentId {
        assert!(
            !self.frozen,
            "components must be registered before the first run"
        );
        let id = ComponentId::from_raw(self.staging.len());
        self.staging.push(c);
        id
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        if self.frozen {
            self.slot.len()
        } else {
            self.staging.len()
        }
    }

    /// Set an explicit component→shard map (e.g. a topology-aware
    /// partition). Entries must be `< cfg.shards`; the map length must equal
    /// the final component count. Must be called before the first run.
    pub fn set_partition(&mut self, shard_of: Vec<usize>) {
        assert!(!self.frozen, "partition must be set before the first run");
        self.partition = Some(shard_of);
    }

    /// Record the last `capacity` dispatched events *per shard*; read back
    /// merged with [`ParEngine::merged_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace_capacity = Some(capacity);
        for sh in &mut self.shards {
            sh.trace = Some(TraceRing::new(capacity));
        }
    }

    /// Schedule an event from outside component context (setup code).
    pub fn schedule(&mut self, at: SimTime, target: ComponentId, payload: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        if self.frozen {
            let s = self.shard_of[target.as_usize()];
            self.shards[s].queue.push(at, target, payload);
        } else {
            let seq = self.setup_seq;
            self.setup_seq += 1;
            self.setup.push(ScheduledEvent {
                time: at,
                seq,
                target,
                payload,
            });
        }
    }

    /// Current simulated instant (last fired event's time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Merged statistics (counters summed, histogram samples concatenated in
    /// shard order). Rebuilt at the end of every run.
    pub fn stats(&self) -> &StatsRegistry {
        &self.merged_stats
    }

    /// Pending events across all shards.
    pub fn pending_events(&self) -> usize {
        if self.frozen {
            self.shards.iter().map(|s| s.queue.len()).sum()
        } else {
            self.setup.len()
        }
    }

    /// Total events ever scheduled (fired or pending), across all shards.
    pub fn scheduled_total(&self) -> u64 {
        if self.frozen {
            self.shards.iter().map(|s| s.queue.scheduled_total()).sum()
        } else {
            self.setup.len() as u64
        }
    }

    /// Cross-shard events exchanged so far.
    pub fn cross_events(&self) -> u64 {
        self.cross_events
    }

    /// Cross-shard events that overflowed a mailbox ring into the mutex
    /// side-channel (a perf signal, not a correctness problem).
    pub fn mailbox_spills(&self) -> u64 {
        self.spills
    }

    /// Number of logical shards (after clamping to the component count).
    pub fn shard_count(&self) -> usize {
        if self.frozen {
            self.shards.len()
        } else {
            self.cfg.shards
        }
    }

    /// The merged dispatch trace in global `(time, seq)` order, if tracing
    /// was enabled. Unlike the sequential engine's trace, `seq` here is the
    /// event's *schedule* sequence number (globally unique), not a dispatch
    /// index.
    pub fn merged_trace(&self) -> Vec<TraceEntry> {
        let mut all: Vec<TraceEntry> = self
            .shards
            .iter()
            .filter_map(|s| s.trace.as_ref())
            .flat_map(|t| t.entries().copied())
            .collect();
        all.sort_by_key(|e| (e.time, e.seq));
        all
    }

    /// Downcast a component to its concrete type (see
    /// [`Component::as_any`]); works before and after runs.
    pub fn component_as<C: 'static>(&self, id: ComponentId) -> Option<&C> {
        let comp: &dyn Component<E> = if self.frozen {
            let (s, i) = self.slot[id.as_usize()];
            self.shards[s].components[i].as_deref()?
        } else {
            self.staging[id.as_usize()].as_ref()
        };
        comp.as_any()?.downcast_ref::<C>()
    }

    /// Mutable counterpart of [`ParEngine::component_as`].
    pub fn component_as_mut<C: 'static>(&mut self, id: ComponentId) -> Option<&mut C> {
        let comp: &mut dyn Component<E> = if self.frozen {
            let (s, i) = self.slot[id.as_usize()];
            self.shards[s].components[i].as_deref_mut()?
        } else {
            self.staging[id.as_usize()].as_mut()
        };
        comp.as_any_mut()?.downcast_mut::<C>()
    }

    /// Run until all queues drain or a component requests a stop. Returns
    /// the number of events fired by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(SimTime::MAX)
    }

    /// Run until the queues drain, a stop is requested, or the clock would
    /// pass `deadline`. Events at exactly `deadline` still fire.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.run(deadline)
    }

    /// Move staged components and setup events into their shards. Called by
    /// the first run; everything order-sensitive here depends only on the
    /// shard count and registration order.
    fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        let n = self.staging.len();
        let shards_n = self.cfg.shards.clamp(1, n.max(1));
        self.cfg.shards = shards_n;

        self.shard_of = match self.partition.take() {
            Some(map) => {
                assert_eq!(map.len(), n, "partition length != component count");
                for &s in &map {
                    assert!(s < shards_n, "partition entry {} >= shard count", s);
                }
                map
            }
            // Default: contiguous blocks, preserving registration locality.
            None => (0..n).map(|i| i * shards_n / n.max(1)).collect(),
        };

        // Setup events hold dense seqs 0..setup_n; shard streams start past
        // them at the next multiple of the stride so every seq is unique and
        // setup events sort first among same-instant peers.
        let setup_n = self.setup.len() as u64;
        let base = setup_n.div_ceil(shards_n as u64) * shards_n as u64;
        let mut root = SimRng::new(self.seed);
        self.shards = (0..shards_n)
            .map(|s| Shard {
                id: s,
                queue: EventQueue::with_seq_stream(base + s as u64, shards_n as u64),
                rng: root.fork(s as u64),
                stats: StatsRegistry::new(),
                trace: self.trace_capacity.map(TraceRing::new),
                components: Vec::new(),
                now: SimTime::ZERO,
                fired: 0,
                stop: false,
            })
            .collect();

        self.slot = vec![(0, 0); n];
        for (i, c) in self.staging.drain(..).enumerate() {
            let s = self.shard_of[i];
            self.slot[i] = (s, self.shards[s].components.len());
            self.shards[s].components.push(Some(c));
        }
        for ev in self.setup.drain(..) {
            let s = self.shard_of[ev.target.as_usize()];
            self.shards[s].queue.push_sequenced(ev);
        }
    }

    fn run(&mut self, deadline: SimTime) -> u64 {
        self.freeze();
        let fired_before: u64 = self.shards.iter().map(|s| s.fired).sum();
        let threads = self.cfg.threads.clamp(1, self.shards.len());
        let ctl = Control::new(threads, self.shards.len());
        let mailboxes: Vec<Mailbox<E>> = (0..self.shards.len())
            .map(|_| Mailbox::new(self.cfg.mailbox_capacity))
            .collect();
        let shared = RunShared {
            mailboxes: &mailboxes,
            ctl: &ctl,
            shard_of: &self.shard_of,
            slot: &self.slot,
            window_ps: self.cfg.window.as_ps(),
            deadline_ps: deadline.as_ps(),
        };

        // Static round-robin shard→worker assignment.
        let mut groups: Vec<Vec<&mut Shard<E>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, sh) in self.shards.iter_mut().enumerate() {
            groups[i % threads].push(sh);
        }

        std::thread::scope(|scope| {
            let shared = &shared;
            let mut groups = groups.into_iter();
            let mine = groups.next().expect("at least one worker");
            for grp in groups {
                scope.spawn(move || worker(grp, shared));
            }
            worker(mine, shared);
        });

        if let Some(p) = ctl.panic_payload.lock().expect("panic slot").take() {
            std::panic::resume_unwind(p);
        }

        // Aggregate shard results back into the engine-level view.
        if let Some(t) = self.shards.iter().map(|s| s.now).max() {
            self.now = self.now.max(t);
        }
        self.events_fired = self.shards.iter().map(|s| s.fired).sum();
        self.cross_events += ctl.cross_sent.load(Ordering::Relaxed);
        self.spills += mailboxes
            .iter()
            .map(|m| m.spills.load(Ordering::Relaxed))
            .sum::<u64>();
        let mut merged = StatsRegistry::new();
        for sh in &self.shards {
            merged.merge_from(&sh.stats);
        }
        self.merged_stats = merged;
        self.events_fired - fired_before
    }
}

/// One worker thread's run loop: alternate drain/decide and process phases
/// until the leader declares the run done. Panics (component bugs, lookahead
/// violations, conservation failures) poison the barrier so every worker
/// unblocks, and the payload is re-raised on the caller's thread.
fn worker<E: Send>(mut my: Vec<&mut Shard<E>>, shared: &RunShared<'_, E>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        worker_loop(&mut my, shared);
    }));
    if let Err(payload) = result {
        let mut slot = shared.ctl.panic_payload.lock().expect("panic slot");
        slot.get_or_insert(payload);
        shared.ctl.done.store(true, Ordering::Relaxed);
        shared.ctl.barrier.poison();
    }
}

fn worker_loop<E: Send>(my: &mut [&mut Shard<E>], shared: &RunShared<'_, E>) {
    let ctl = shared.ctl;
    loop {
        // Phase 1: drain mailboxes (all producers passed the previous
        // barrier, so the rings are quiescent) and publish each shard's
        // earliest pending time.
        for shard in my.iter_mut() {
            drain_mailbox(shard, shared);
            let next = shard.queue.peek_time().map_or(u64::MAX, |t| t.as_ps());
            ctl.next_time[shard.id].store(next, Ordering::Relaxed);
            if cfg!(debug_assertions) {
                ctl.dbg_scheduled
                    .fetch_add(shard.queue.scheduled_total(), Ordering::Relaxed);
                ctl.dbg_fired.fetch_add(shard.fired, Ordering::Relaxed);
                ctl.dbg_pending
                    .fetch_add(shard.queue.len() as u64, Ordering::Relaxed);
            }
        }

        // Phase 2: the last arriver picks the next window (or ends the run).
        let ok = ctl.barrier.wait_leader(|| {
            if cfg!(debug_assertions) {
                // Conservation: with all mailboxes drained, every event ever
                // scheduled anywhere is either fired or pending...
                let scheduled = ctl.dbg_scheduled.swap(0, Ordering::Relaxed);
                let fired = ctl.dbg_fired.swap(0, Ordering::Relaxed);
                let pending = ctl.dbg_pending.swap(0, Ordering::Relaxed);
                assert!(
                    scheduled == fired + pending,
                    "event conservation violated: scheduled {} != fired {} + pending {}",
                    scheduled,
                    fired,
                    pending,
                );
                // ...and every cross-shard send has been received.
                let sent = ctl.cross_sent.load(Ordering::Relaxed);
                let recvd = ctl.cross_recvd.load(Ordering::Relaxed);
                assert!(
                    sent == recvd,
                    "cross-shard conservation violated: sent {} != received {}",
                    sent,
                    recvd,
                );
            }
            let min = ctl
                .next_time
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .min()
                .unwrap_or(u64::MAX);
            if ctl.stop.load(Ordering::Relaxed) || min == u64::MAX || min > shared.deadline_ps {
                ctl.done.store(true, Ordering::Relaxed);
            } else {
                // Exclusive end: at least one tick past the minimum (so a
                // zero window still progresses), capped so nothing past the
                // deadline fires.
                let end = min
                    .saturating_add(shared.window_ps)
                    .max(min.saturating_add(1))
                    .min(shared.deadline_ps.saturating_add(1));
                ctl.window_end_ps.store(end, Ordering::Relaxed);
            }
        });
        if !ok || ctl.done.load(Ordering::Relaxed) {
            return;
        }

        // Phase 3: process this window on every owned shard, then rendezvous
        // so the next drain sees all cross-shard traffic.
        let window_end_ps = ctl.window_end_ps.load(Ordering::Relaxed);
        for shard in my.iter_mut() {
            process_window(shard, window_end_ps, shared);
        }
        if !ctl.barrier.wait_leader(|| {}) {
            return;
        }
    }
}

fn drain_mailbox<E: Send>(shard: &mut Shard<E>, shared: &RunShared<'_, E>) {
    let mb = &shared.mailboxes[shard.id];
    let mut received = 0u64;
    while let Some(ev) = mb.ring.try_pop() {
        shard.queue.push_sequenced(ev);
        received += 1;
    }
    let spilled = std::mem::take(&mut *mb.overflow.lock().expect("overflow lock"));
    for ev in spilled {
        shard.queue.push_sequenced(ev);
        received += 1;
    }
    if received > 0 {
        shared
            .ctl
            .cross_recvd
            .fetch_add(received, Ordering::Relaxed);
    }
}

fn process_window<E: Send>(shard: &mut Shard<E>, window_end_ps: u64, shared: &RunShared<'_, E>) {
    loop {
        let Some(t) = shard.queue.peek_time() else {
            return;
        };
        if t.as_ps() >= window_end_ps {
            return;
        }
        let ev = shard.queue.pop().expect("peeked event");
        debug_assert!(ev.time >= shard.now, "shard clock went backwards");
        shard.now = ev.time;
        shard.fired += 1;
        if let Some(trace) = &mut shard.trace {
            trace.push(TraceEntry {
                time: ev.time,
                target: ev.target,
                seq: ev.seq,
            });
        }
        let (owner, local) = shared.slot[ev.target.as_usize()];
        debug_assert_eq!(owner, shard.id, "event routed to the wrong shard");
        let mut comp = shard.components[local]
            .take()
            .unwrap_or_else(|| panic!("event for unregistered/active component {:?}", ev.target));
        {
            let mut sink = ShardSink {
                shard_id: shard.id,
                queue: &mut shard.queue,
                mailboxes: shared.mailboxes,
                ctl: shared.ctl,
                shard_of: shared.shard_of,
                window_end_ps,
            };
            let mut ctx = Ctx::new(
                ev.time,
                ev.target,
                &mut sink,
                &mut shard.rng,
                &mut shard.stats,
                &mut shard.stop,
            );
            comp.handle(ev.payload, &mut ctx);
        }
        shard.components[local] = Some(comp);
        if shard.stop {
            // Stop halts this shard's window immediately; peers finish the
            // window (deterministic regardless of thread interleaving) and
            // the leader ends the run at the next barrier.
            shard.stop = false;
            shared.ctl.stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

impl<E: Send> SimBuilder<E> for ParEngine<E> {
    fn register(&mut self, c: Box<dyn Component<E> + Send>) -> ComponentId {
        self.add_boxed(c)
    }

    fn registered(&self) -> usize {
        self.component_count()
    }

    fn seed_event(&mut self, at: SimTime, target: ComponentId, payload: E) {
        self.schedule(at, target, payload);
    }
}

impl<E> fmt::Debug for ParEngine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParEngine")
            .field("now", &self.now)
            .field("threads", &self.cfg.threads)
            .field("shards", &self.cfg.shards)
            .field("fired", &self.events_fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOP: SimTime = SimTime::from_ns(100);

    #[derive(Debug)]
    struct Token {
        hops: u32,
    }

    /// Forwards a token around a ring of peers with `HOP` latency, counting
    /// and sampling as it goes.
    struct RingNode {
        next: ComponentId,
        seen: u32,
        budget: u32,
    }

    impl Component<Token> for RingNode {
        fn handle(&mut self, ev: Token, ctx: &mut Ctx<'_, Token>) {
            self.seen += 1;
            ctx.stats().counter("hops").inc();
            let jitter = ctx.rng().below(50);
            ctx.stats().histogram("jitter").record(jitter as f64);
            if ev.hops < self.budget {
                ctx.schedule_in(
                    HOP + SimTime::from_ps(jitter),
                    self.next,
                    Token { hops: ev.hops + 1 },
                );
            }
        }

        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }

        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn ring_engine(threads: usize, nodes: usize, budget: u32) -> ParEngine<Token> {
        let cfg = SimConfig {
            threads,
            window: HOP,
            shards: 4,
            mailbox_capacity: 8,
        };
        let mut e = ParEngine::new(7, cfg);
        for i in 0..nodes {
            e.add_component(RingNode {
                next: ComponentId::from_raw((i + 1) % nodes),
                seen: 0,
                budget,
            });
        }
        e.schedule(SimTime::ZERO, ComponentId::from_raw(0), Token { hops: 0 });
        e
    }

    fn fingerprint(e: &ParEngine<Token>) -> (SimTime, u64, u64, Vec<f64>) {
        (
            e.now(),
            e.events_fired(),
            e.stats().counter_value("hops"),
            e.stats()
                .get_histogram("jitter")
                .map(|h| h.samples().to_vec())
                .unwrap_or_default(),
        )
    }

    #[test]
    fn single_thread_ring_completes() {
        let mut e = ring_engine(1, 8, 40);
        let fired = e.run_to_completion();
        assert_eq!(fired, 41);
        assert_eq!(e.stats().counter_value("hops"), 41);
        assert_eq!(e.scheduled_total(), e.events_fired());
        assert_eq!(e.pending_events(), 0);
        assert!(e.cross_events() > 0, "ring spans shards");
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let mut base = ring_engine(1, 8, 200);
        base.enable_trace(64);
        base.run_to_completion();
        let want = fingerprint(&base);
        let want_trace = base.merged_trace();
        for threads in [2, 4, 8] {
            let mut e = ring_engine(threads, 8, 200);
            e.enable_trace(64);
            e.run_to_completion();
            assert_eq!(fingerprint(&e), want, "threads={}", threads);
            assert_eq!(e.merged_trace(), want_trace, "threads={}", threads);
        }
    }

    #[test]
    fn small_mailbox_spills_but_stays_correct() {
        // Capacity 0 rounds up to a 2-slot ring: cross-shard bursts must
        // take the overflow path without changing any result.
        let tiny = |threads| {
            let cfg = SimConfig {
                threads,
                window: HOP,
                shards: 4,
                mailbox_capacity: 0,
            };
            let mut e = ParEngine::new(7, cfg);
            for i in 0..8usize {
                e.add_component(RingNode {
                    next: ComponentId::from_raw((i + 1) % 8),
                    seen: 0,
                    budget: 300,
                });
            }
            e.schedule(SimTime::ZERO, ComponentId::from_raw(0), Token { hops: 0 });
            e.run_to_completion();
            e
        };
        let par = tiny(4);
        let seq = tiny(1);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
        let mut roomy = ring_engine(4, 8, 300);
        roomy.run_to_completion();
        assert_eq!(fingerprint(&par), fingerprint(&roomy));
    }

    #[test]
    fn run_until_and_resume_match_uninterrupted() {
        let mut whole = ring_engine(4, 8, 100);
        whole.run_to_completion();

        let mut stepped = ring_engine(4, 8, 100);
        let mid = SimTime::from_ns(2_000);
        stepped.run_until(mid);
        assert!(stepped.now() <= mid);
        assert!(stepped.pending_events() > 0);
        stepped.run_to_completion();
        assert_eq!(fingerprint(&stepped), fingerprint(&whole));
    }

    #[test]
    fn downcast_after_run() {
        let mut e = ring_engine(2, 4, 7);
        e.run_to_completion();
        let total: u32 = (0..4)
            .map(|i| {
                e.component_as::<RingNode>(ComponentId::from_raw(i))
                    .expect("ring node")
                    .seen
            })
            .sum();
        assert_eq!(total, 8);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lookahead_violation_panics() {
        struct Fast {
            peer: ComponentId,
        }
        impl Component<Token> for Fast {
            fn handle(&mut self, _ev: Token, ctx: &mut Ctx<'_, Token>) {
                // Cross-shard with near-zero latency while the window claims
                // 100 ns of lookahead: must be rejected.
                ctx.schedule_in(SimTime::from_ps(1), self.peer, Token { hops: 0 });
            }
        }
        let mut e = ParEngine::new(
            1,
            SimConfig {
                threads: 2,
                window: SimTime::from_ns(100),
                shards: 2,
                mailbox_capacity: 8,
            },
        );
        let a = e.add_component(Fast {
            peer: ComponentId::from_raw(1),
        });
        e.add_component(Fast {
            peer: ComponentId::from_raw(0),
        });
        e.set_partition(vec![0, 1]);
        e.schedule(SimTime::ZERO, a, Token { hops: 0 });
        e.run_to_completion();
    }

    #[test]
    fn stop_request_halts_and_resumes() {
        struct Stopper;
        impl Component<Token> for Stopper {
            fn handle(&mut self, _ev: Token, ctx: &mut Ctx<'_, Token>) {
                ctx.request_stop();
            }
        }
        let mut e = ParEngine::new(3, SimConfig::new(2, HOP));
        let a = e.add_component(Stopper);
        let b = e.add_component(Stopper);
        e.schedule(SimTime::ZERO, a, Token { hops: 0 });
        e.schedule(SimTime::from_us(1), b, Token { hops: 0 });
        e.run_to_completion();
        assert_eq!(e.pending_events(), 1, "stop left the later event queued");
        e.run_to_completion();
        assert_eq!(e.pending_events(), 0);
        assert_eq!(e.events_fired(), 2);
    }

    #[test]
    fn empty_engine_runs() {
        let mut e: ParEngine<Token> = ParEngine::new(0, SimConfig::default());
        assert_eq!(e.run_to_completion(), 0);
        assert_eq!(e.now(), SimTime::ZERO);
    }
}
