//! # rvma-sim — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) core in the spirit
//! of SST-core, built for the RVMA reproduction. The paper evaluated RVMA at
//! scale with the Structural Simulation Toolkit (SST); since SST has no Rust
//! ecosystem, this crate provides the equivalent substrate:
//!
//! * [`SimTime`] — picosecond-resolution simulated time (the paper uses a
//!   5 GHz update frequency, i.e. 200 ps ticks; picoseconds subsume that),
//! * [`Engine`] — a generic event loop over a user-supplied event type,
//! * [`Component`] — the trait simulated entities (switches, NICs, hosts)
//!   implement,
//! * [`SimRng`] — a seeded, reproducible RNG so that a given (seed, config)
//!   pair always yields an identical event trace,
//! * [`stats`] — counters and histograms for measurement collection.
//!
//! Two engine drivers share the same [`Component`] model:
//!
//! * [`Engine`] — the sequential loop: one calendar queue, simple borrow
//!   semantics, the reference semantics everything else is measured against.
//! * [`ParEngine`] — sharded conservative-window parallel execution for
//!   full-scale runs (the paper's 8,192-node fabrics), configured by
//!   [`SimConfig`]. Determinism survives parallelism: per-shard seq strides
//!   and RNG streams keep results bit-identical across thread counts (see
//!   the [`par`] module docs for the scheme).
//!
//! ```
//! use rvma_sim::{Engine, Component, Ctx, SimTime};
//!
//! struct Ping { sent: u64 }
//! #[derive(Debug)]
//! struct Tick;
//!
//! impl Component<Tick> for Ping {
//!     fn handle(&mut self, _ev: Tick, ctx: &mut Ctx<'_, Tick>) {
//!         self.sent += 1;
//!         if self.sent < 3 {
//!             let me = ctx.self_id();
//!             ctx.schedule_in(SimTime::from_ns(10), me, Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(42);
//! let id = engine.add_component(Ping { sent: 0 });
//! engine.schedule(SimTime::ZERO, id, Tick);
//! engine.run_to_completion();
//! assert_eq!(engine.now(), SimTime::from_ns(20));
//! ```

pub mod engine;
pub mod event;
pub mod par;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Component, ComponentId, Ctx, Engine, EventSink, SimBuilder};
pub use event::{EventQueue, ScheduledEvent};
pub use par::{ParEngine, SimConfig};
pub use ring::EventRing;
pub use rng::SimRng;
pub use stats::{Counter, Histogram, StatsRegistry};
pub use time::{Bandwidth, SimTime};
pub use trace::{TraceEntry, TraceRing};
