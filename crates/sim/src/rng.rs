//! Deterministic random number generation for simulations.
//!
//! Every stochastic choice in a model (adaptive-routing tiebreaks, jitter)
//! must draw from the engine's [`SimRng`] so that a `(seed, config)` pair
//! fully determines the run. ChaCha8 is used: fast, portable, and its stream
//! is stable across platforms and Rust versions (unlike `SmallRng`).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded, reproducible RNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Fork a child RNG whose stream is a deterministic function of this
    /// RNG's state and `stream_id`; useful for giving each component an
    /// independent but reproducible stream.
    pub fn fork(&mut self, stream_id: u64) -> SimRng {
        let base: u64 = self.inner.random();
        SimRng::new(base ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let va: Vec<u64> = (0..32).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.below(1 << 60), c2.below(1 << 60));

        let mut parent3 = SimRng::new(9);
        let mut d = parent3.fork(6);
        let mut c3 = SimRng::new(9).fork(5);
        assert_ne!(
            (0..8).map(|_| d.below(1 << 60)).collect::<Vec<_>>(),
            (0..8).map(|_| c3.below(1 << 60)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_in_half_open_range() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::new(5);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
