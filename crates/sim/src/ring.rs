//! Bounded lock-free MPSC ring for cross-shard event mailboxes.
//!
//! Same sequence-number protocol as the datapath wire rings in
//! `rvma_core::ring` (Vyukov's bounded MPMC queue, restricted to one
//! consumer): each slot carries an atomic sequence number that encodes
//! whether it is free for the producer at a given ticket or holds a value
//! for the consumer. Producers claim tickets with a CAS on `tail`; the
//! single consumer (the shard's worker thread, which only drains at window
//! barriers) walks `head` without contention.
//!
//! Unlike the datapath rings there is no park/doorbell machinery: the
//! parallel engine never blocks on a mailbox. A full ring reports
//! [`RingFull`] and the sender falls back to the shard's mutex-backed
//! overflow list, so a burst of cross-shard traffic degrades to a lock
//! instead of deadlocking mid-window.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pad to a cache line so `head` and `tail` don't false-share.
#[repr(align(64))]
struct Padded<T>(T);

struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

/// A bounded multi-producer single-consumer ring.
pub struct EventRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    tail: Padded<AtomicUsize>,
    head: Padded<AtomicUsize>,
}

// SAFETY: values move through the ring at most once; the slot sequence
// protocol (claim ticket by CAS, publish with a release store, consume after
// an acquire load) hands each value from exactly one producer to the single
// consumer with the required happens-before edge.
unsafe impl<T: Send> Send for EventRing<T> {}
unsafe impl<T: Send> Sync for EventRing<T> {}

impl<T> EventRing<T> {
    /// A ring holding up to `capacity` values (rounded up to a power of two,
    /// minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            slots,
            mask: cap - 1,
            tail: Padded(AtomicUsize::new(0)),
            head: Padded(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Push from any thread; returns the value back on a full ring.
    pub fn try_push(&self, value: T) -> Result<(), (RingFull, T)> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - tail as isize;
            if diff == 0 {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `tail`, so this
                        // thread has exclusive write access to the slot
                        // until the release store below publishes it.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if diff < 0 {
                return Err((RingFull, value));
            } else {
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop from the single consumer thread.
    ///
    /// # Safety contract (enforced by the parallel engine's structure)
    /// Only one thread may call this at a time; the engine routes each
    /// shard's mailbox to exactly one worker.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if (seq as isize).wrapping_sub(head.wrapping_add(1) as isize) < 0 {
            return None;
        }
        // SAFETY: the producer's release store published this slot for
        // ticket `head`; the single consumer takes the value exactly once
        // before recycling the slot.
        let value = unsafe { (*slot.val.get()).assume_init_read() };
        slot.seq
            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
        self.head.0.store(head.wrapping_add(1), Ordering::Relaxed);
        Some(value)
    }
}

impl<T> Drop for EventRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let r = EventRing::with_capacity(8);
        for i in 0..5 {
            r.try_push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let r = EventRing::with_capacity(4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.try_push(99), Err((RingFull, 99)));
        assert_eq!(r.try_pop(), Some(0));
        r.try_push(99).unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| r.try_pop()).collect();
        assert_eq!(drained, vec![1, 2, 3, 99]);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::<u8>::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::<u8>::with_capacity(8).capacity(), 8);
    }

    #[test]
    fn drops_undrained_values() {
        let v = Arc::new(());
        {
            let r = EventRing::with_capacity(4);
            r.try_push(Arc::clone(&v)).unwrap();
            r.try_push(Arc::clone(&v)).unwrap();
        }
        assert_eq!(Arc::strong_count(&v), 1);
    }

    #[test]
    fn multi_producer_stress() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 2000;
        let r = Arc::new(EventRing::with_capacity(64));
        let mut got: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            for p in 0..PRODUCERS as u64 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER {
                        let mut v = p * PER + i;
                        loop {
                            match r.try_push(v) {
                                Ok(()) => break,
                                Err((_, back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            while got.len() < PRODUCERS * PER as usize {
                match r.try_pop() {
                    Some(v) => got.push(v),
                    None => std::thread::yield_now(),
                }
            }
        });
        // Every value arrives exactly once, and each producer's values
        // arrive in its send order.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
        for p in 0..PRODUCERS as u64 {
            let per: Vec<_> = got.iter().copied().filter(|v| v / PER == p).collect();
            assert!(per.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
