//! Measurement collection: counters and streaming histograms.
//!
//! Models register named statistics with the engine's [`StatsRegistry`] and
//! bump them during event handling; harness code reads them out after a run.
//! The histogram keeps raw samples (simulation runs here are small enough)
//! so exact quantiles and standard deviations are available — the paper's
//! Fig. 5 reports stddev error bars.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// A monotonically increasing named counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A sample collection with exact summary statistics.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a raw sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Record a [`SimTime`] sample in nanoseconds.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, or `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Exact quantile by nearest-rank (q in `[0,1]`), or `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The raw samples in recorded order (post-quantile calls the order is
    /// sorted; both are deterministic). The parity suite compares these
    /// bit-for-bit across thread counts.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Named statistics owned by an [`crate::Engine`].
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter, created on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), Counter::default());
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// The named histogram, created on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), Histogram::new());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// Read a counter's value (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(Counter::get).unwrap_or(0)
    }

    /// Read-only access to a histogram, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counter names in lexicographic order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All histogram names in lexicographic order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Fold another registry into this one: counters add, histogram samples
    /// append in `other`'s recorded order. The parallel engine merges shard
    /// registries in shard-id order, which keeps the merged sample sequence
    /// (and therefore f64 summation order in `mean`/`stddev`) bit-identical
    /// regardless of worker thread count.
    pub fn merge_from(&mut self, other: &StatsRegistry) {
        for (name, c) in &other.counters {
            self.counter(name).add(c.get());
        }
        for (name, h) in &other.histograms {
            let mine = self.histogram(name);
            for &v in h.samples() {
                mine.record(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        let sd = h.stddev().unwrap();
        assert!((sd - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.stddev(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        // Insert shuffled; quantile must sort internally.
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        // Further records invalidate the sort and still work.
        h.record(0.0);
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn record_time_in_ns() {
        let mut h = Histogram::new();
        h.record_time(SimTime::from_us(2));
        assert_eq!(h.mean(), Some(2000.0));
    }

    #[test]
    fn registry_creates_and_reads() {
        let mut r = StatsRegistry::new();
        r.counter("pkts").add(3);
        r.histogram("lat").record(7.0);
        assert_eq!(r.counter_value("pkts"), 3);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.get_histogram("lat").unwrap().count(), 1);
        assert!(r.get_histogram("missing").is_none());
        assert_eq!(r.counter_names().collect::<Vec<_>>(), vec!["pkts"]);
        assert_eq!(r.histogram_names().collect::<Vec<_>>(), vec!["lat"]);
    }
}
