//! Parity suite: the parallel engine must produce bit-identical results at
//! every thread count — final clock, events fired, every counter, every
//! histogram sample, and the merged trace. The model here is a 2-D grid of
//! cells bouncing tokens to random neighbours (cross-shard traffic at
//! exactly the lookahead), with sub-window local self-events mixed in, so
//! every synchronization path of the conservative-window protocol is
//! exercised: intra-window self-scheduling, boundary-time cross-shard
//! sends, rng-dependent fan-out, mid-run stops, and deadline splits.

use rvma_sim::{
    Component, ComponentId, Ctx, ParEngine, SimConfig, SimTime, StatsRegistry, TraceEntry,
};

/// Cross-cell latency: exactly the engine window (the tight legal case).
const LAT: SimTime = SimTime::from_ns(100);

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A token with `hops` remaining, bounced between cells.
    Token { hops: u32 },
    /// A local self-event scheduled inside the window.
    LocalTick,
}

struct Cell {
    id: u32,
    neighbours: Vec<ComponentId>,
    tokens_seen: u64,
    /// When true, ask the engine to stop after this many tokens.
    stop_after: Option<u64>,
}

impl Component<Ev> for Cell {
    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Token { hops } => {
                self.tokens_seen += 1;
                ctx.stats().counter("grid.tokens").inc();
                let now = ctx.now();
                ctx.stats().histogram("grid.token_ns").record_time(now);
                // Sub-window self-event: exercises intra-window processing.
                if self.tokens_seen.is_multiple_of(3) {
                    let me = ctx.self_id();
                    ctx.schedule_in(SimTime::from_ns(10), me, Ev::LocalTick);
                }
                if hops > 0 {
                    let nb = *ctx.rng().pick(&self.neighbours);
                    let jitter = SimTime::from_ns(ctx.rng().below(50));
                    ctx.schedule_in(LAT + jitter, nb, Ev::Token { hops: hops - 1 });
                }
                if self.stop_after == Some(self.tokens_seen) {
                    ctx.request_stop();
                }
            }
            Ev::LocalTick => {
                ctx.stats().counter("grid.local_ticks").inc();
            }
        }
        let _ = self.id;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Build a `w × h` grid where every cell starts one token.
fn build_grid(
    seed: u64,
    threads: usize,
    w: u32,
    h: u32,
    hops: u32,
    stop_cell: Option<(u32, u64)>,
) -> ParEngine<Ev> {
    let mut cfg = SimConfig::new(threads, LAT);
    cfg.shards = 8;
    let mut eng = ParEngine::new(seed, cfg);
    eng.enable_trace(1 << 16);
    let ids: Vec<ComponentId> = (0..w * h)
        .map(|i| {
            eng.add_component(Cell {
                id: i,
                neighbours: Vec::new(),
                tokens_seen: 0,
                stop_after: stop_cell.and_then(|(c, n)| (c == i).then_some(n)),
            })
        })
        .collect();
    for y in 0..h {
        for x in 0..w {
            let i = (y * w + x) as usize;
            let mut nbs = Vec::new();
            for (dx, dy) in [(1, 0), (w - 1, 0), (0, 1), (0, h - 1)] {
                let nx = (x + dx) % w;
                let ny = (y + dy) % h;
                nbs.push(ids[(ny * w + nx) as usize]);
            }
            // Rewire by downcast: neighbours aren't known at add time.
            eng.component_as_mut::<Cell>(ids[i]).unwrap().neighbours = nbs;
        }
    }
    for (i, &id) in ids.iter().enumerate() {
        eng.schedule(SimTime::from_ns(i as u64 % 7), id, Ev::Token { hops });
    }
    eng
}

/// Everything observable about a finished run, bit-exact.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    now: SimTime,
    events: u64,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Vec<u64>)>,
    trace: Vec<TraceEntry>,
}

fn fingerprint(eng: &ParEngine<Ev>) -> Fingerprint {
    Fingerprint {
        now: eng.now(),
        events: eng.events_fired(),
        counters: sorted_counters(eng.stats()),
        histograms: sorted_histograms(eng.stats()),
        trace: eng.merged_trace(),
    }
}

fn sorted_counters(stats: &StatsRegistry) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = stats
        .counter_names()
        .map(|n| (n.to_string(), stats.counter_value(n)))
        .collect();
    v.sort();
    v
}

fn sorted_histograms(stats: &StatsRegistry) -> Vec<(String, Vec<u64>)> {
    let mut v: Vec<(String, Vec<u64>)> = stats
        .histogram_names()
        .map(|n| {
            let samples = stats
                .get_histogram(n)
                .map(|h| h.samples().iter().map(|s| s.to_bits()).collect())
                .unwrap_or_default();
            (n.to_string(), samples)
        })
        .collect();
    v.sort();
    v
}

#[test]
fn grid_parity_across_threads() {
    for seed in [1u64, 7, 42] {
        let mut reference = build_grid(seed, 1, 8, 8, 40, None);
        reference.run_to_completion();
        let want = fingerprint(&reference);
        assert!(want.events > 0, "model must actually run");
        for threads in [2, 4, 8] {
            let mut eng = build_grid(seed, threads, 8, 8, 40, None);
            eng.run_to_completion();
            let got = fingerprint(&eng);
            assert_eq!(got, want, "thread count {threads} diverged (seed {seed})");
        }
    }
}

#[test]
fn parity_with_run_until_deadline_and_resume() {
    let mut reference = build_grid(9, 1, 6, 6, 30, None);
    reference.run_to_completion();
    let want = fingerprint(&reference);

    for threads in [1, 2, 4, 8] {
        let mut eng = build_grid(9, threads, 6, 6, 30, None);
        // Split the run at two arbitrary deadlines (mid-window times).
        eng.run_until(SimTime::from_ns(517));
        assert!(eng.now() <= SimTime::from_ns(517));
        eng.run_until(SimTime::from_ns(1303));
        eng.run_to_completion();
        let got = fingerprint(&eng);
        assert_eq!(
            got, want,
            "deadline-split run diverged at {threads} threads"
        );
    }
}

#[test]
fn parity_with_mid_run_stop_and_resume() {
    // Cell 5 requests a stop after its 4th token; resuming must converge to
    // the identical final state at every thread count.
    let mut reference = build_grid(3, 1, 6, 6, 30, Some((5, 4)));
    reference.run_to_completion(); // halts at the stop
    let paused = fingerprint(&reference);
    reference.run_to_completion(); // resumes to quiescence
    let want = fingerprint(&reference);
    assert!(paused.events < want.events, "stop must pause early");

    for threads in [2, 4, 8] {
        let mut eng = build_grid(3, threads, 6, 6, 30, Some((5, 4)));
        eng.run_to_completion();
        eng.run_to_completion();
        let got = fingerprint(&eng);
        assert_eq!(got, want, "stop/resume diverged at {threads} threads");
    }
}

#[test]
fn conservation_holds_at_quiesce() {
    for threads in [1, 2, 4, 8] {
        let mut eng = build_grid(11, threads, 8, 8, 25, None);
        let fired = eng.run_to_completion();
        assert_eq!(eng.pending_events(), 0, "quiesced engine has no backlog");
        assert_eq!(
            eng.scheduled_total(),
            eng.events_fired(),
            "every scheduled event fired exactly once ({threads} threads)"
        );
        assert_eq!(fired, eng.events_fired());
    }
}

#[test]
fn cross_shard_traffic_actually_happens() {
    // The parity results above are only meaningful if the grid really does
    // cross shard boundaries; a degenerate partition would make the suite
    // vacuous.
    let mut eng = build_grid(1, 4, 8, 8, 40, None);
    eng.run_to_completion();
    assert!(
        eng.cross_events() > 0,
        "grid model must generate cross-shard events"
    );
    assert!(eng.shard_count() > 1);
}
