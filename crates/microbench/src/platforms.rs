//! Calibrated platform constants.
//!
//! The paper ran its microbenchmarks on two real systems; we have neither,
//! so the constants below are calibrated from public latency figures for
//! the same NIC/CPU families and — where the paper states a headline —
//! tuned so the model reproduces it at the smallest message size:
//!
//! * **Verbs / Intel OmniPath 100 Gb + Skylake 8160** (paper Fig. 4):
//!   base write latency ≈ 0.8 µs; the completion send/recv + CQ handling
//!   costs ≈ 1.54 µs, giving the paper's **65.8 %** small-message
//!   reduction (`1 − 0.8/2.34`).
//! * **UCX (UCP) / Mellanox ConnectX-5 EDR + ThunderX2** (paper Fig. 5):
//!   base ≈ 1.2 µs (ARM cores pay more per op), fence ≈ 1.01 µs → the
//!   paper's **45.8 %** reduction.
//!
//! Registration costs use the commonly measured ~2 µs `ibv_reg_mr` for
//! small regions. See EXPERIMENTS.md for the substitution note.

use crate::model::CostModel;
use rvma_sim::{Bandwidth, SimTime};

/// Verbs on Intel OmniPath 100 Gb with Skylake hosts (paper Fig. 4).
pub fn verbs_omnipath() -> CostModel {
    CostModel {
        name: "Verbs/OmniPath-100G",
        alpha: SimTime::from_ns(800),
        bandwidth: Bandwidth::from_gbps(100),
        fence_overhead: SimTime::from_ns(1540),
        registration: SimTime::from_us(2),
        small_msg: SimTime::from_ns(900),
        rvma_completion: SimTime::from_ns(10),
    }
}

/// UCX (UCP layer) on Mellanox ConnectX-5 EDR with ThunderX2 hosts
/// (paper Fig. 5).
pub fn ucx_connectx5() -> CostModel {
    CostModel {
        name: "UCX/ConnectX-5-EDR",
        alpha: SimTime::from_ns(1200),
        bandwidth: Bandwidth::from_gbps(100),
        fence_overhead: SimTime::from_ns(1015),
        registration: SimTime::from_us(2),
        small_msg: SimTime::from_ns(1100),
        rvma_completion: SimTime::from_ns(10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Routing;

    #[test]
    fn verbs_reproduces_headline_reduction() {
        let m = verbs_omnipath();
        let r = m.reduction(2, Routing::Adaptive);
        assert!(
            (r - 0.658).abs() < 0.01,
            "Verbs small-message reduction {r:.3}, paper says 0.658"
        );
    }

    #[test]
    fn ucx_reproduces_headline_reduction() {
        let m = ucx_connectx5();
        let r = m.reduction(2, Routing::Adaptive);
        assert!(
            (r - 0.458).abs() < 0.01,
            "UCX small-message reduction {r:.3}, paper says 0.458"
        );
    }

    #[test]
    fn platforms_are_distinct() {
        assert!(verbs_omnipath().alpha < ucx_connectx5().alpha);
        assert_ne!(verbs_omnipath().name, ucx_connectx5().name);
    }
}
