//! Figure composition: the rows of the paper's Figs. 4–6.
//!
//! The paper reports averages over repeated runs (10 runs of 1,000 or
//! 100,000 iterations) with standard-deviation error bars (Fig. 5). We add
//! a small multiplicative run-to-run jitter — seeded, reproducible — so the
//! regenerated tables carry the same mean ± stddev structure.

use crate::model::{CostModel, Routing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Message sizes swept in the latency figures (2 B .. 4 MiB, powers of 4,
/// matching perftest's default sweep granularity).
pub fn latency_sizes() -> Vec<u64> {
    (1..=11).map(|i| 2u64 << (2 * (i - 1))).collect()
}

/// One row of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, Copy)]
pub struct LatencyRow {
    /// Message size, bytes.
    pub size: u64,
    /// Mean RDMA latency (spec-compliant adaptive completion), ns.
    pub rdma_ns: f64,
    /// RDMA run-to-run standard deviation, ns.
    pub rdma_sd: f64,
    /// Mean RVMA latency, ns.
    pub rvma_ns: f64,
    /// RVMA run-to-run standard deviation, ns.
    pub rvma_sd: f64,
    /// Latency reduction, `1 − rvma/rdma`.
    pub reduction: f64,
}

/// Average of `runs` jittered samples of `base` (±`jitter` uniform),
/// returning (mean, stddev).
fn sample(base: f64, runs: usize, jitter: f64, rng: &mut StdRng) -> (f64, f64) {
    let samples: Vec<f64> = (0..runs)
        .map(|_| base * (1.0 + rng.random_range(-jitter..jitter)))
        .collect();
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / runs as f64;
    (mean, var.sqrt())
}

/// Regenerate a latency figure (Fig. 4 with the Verbs model, Fig. 5 with
/// the UCX model): RVMA vs. spec-compliant RDMA on an adaptively-routed
/// network, averaged over `runs` jittered runs.
pub fn latency_figure(model: &CostModel, runs: usize, seed: u64) -> Vec<LatencyRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    latency_sizes()
        .into_iter()
        .map(|size| {
            let (rdma_ns, rdma_sd) = sample(
                model.rdma_put(size, Routing::Adaptive).as_ns_f64(),
                runs,
                0.02,
                &mut rng,
            );
            let (rvma_ns, rvma_sd) = sample(model.rvma_put(size).as_ns_f64(), runs, 0.02, &mut rng);
            LatencyRow {
                size,
                rdma_ns,
                rdma_sd,
                rvma_ns,
                rvma_sd,
                reduction: (rdma_ns - rvma_ns) / rdma_ns,
            }
        })
        .collect()
}

/// One row of the static-routing comparison (the paper's side claim that
/// "RVMA provides performance comparable to current statically-routed RDMA
/// latency regardless of network routing").
#[derive(Debug, Clone, Copy)]
pub struct StaticRow {
    /// Message size, bytes.
    pub size: u64,
    /// RDMA with last-byte polling on a statically-routed network, ns.
    pub rdma_static_ns: f64,
    /// RVMA (any routing), ns.
    pub rvma_ns: f64,
    /// RVMA overhead relative to the static-RDMA best case
    /// (`rvma/rdma − 1`; small positive = "comparable").
    pub overhead: f64,
}

/// Regenerate the static-routing comparison: RVMA vs. the last-byte-poll
/// RDMA best case. No jitter — this is the deterministic model output.
pub fn static_comparison(model: &CostModel) -> Vec<StaticRow> {
    latency_sizes()
        .into_iter()
        .map(|size| {
            let rdma = model.rdma_put(size, Routing::Static).as_ns_f64();
            let rvma = model.rvma_put(size).as_ns_f64();
            StaticRow {
                size,
                rdma_static_ns: rdma,
                rvma_ns: rvma,
                overhead: rvma / rdma - 1.0,
            }
        })
        .collect()
}

/// One row of Fig. 6 (setup-amortization analysis).
#[derive(Debug, Clone, Copy)]
pub struct AmortizationRow {
    /// Message size, bytes.
    pub size: u64,
    /// Exchanges needed to amortize setup within tolerance, static routing.
    pub exchanges_static: u64,
    /// Same, adaptive routing (per-op latency includes the fence).
    pub exchanges_adaptive: u64,
}

/// Regenerate Fig. 6: exchanges needed to amortize RDMA buffer setup to
/// within `tolerance` (the paper uses its latency-test margin of error,
/// 3 %).
pub fn amortization_figure(model: &CostModel, tolerance: f64) -> Vec<AmortizationRow> {
    latency_sizes()
        .into_iter()
        .map(|size| AmortizationRow {
            size,
            exchanges_static: model.amortization_exchanges(size, Routing::Static, tolerance),
            exchanges_adaptive: model.amortization_exchanges(size, Routing::Adaptive, tolerance),
        })
        .collect()
}

/// The headline numbers of Sec. V-A: peak latency reduction per platform.
pub fn peak_reduction(model: &CostModel) -> f64 {
    latency_sizes()
        .into_iter()
        .map(|s| model.reduction(s, Routing::Adaptive))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{ucx_connectx5, verbs_omnipath};

    #[test]
    fn sizes_span_2b_to_4mb() {
        let s = latency_sizes();
        assert_eq!(*s.first().unwrap(), 2);
        assert_eq!(*s.last().unwrap(), 2 << 20);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 4));
    }

    #[test]
    fn latency_rows_monotone_in_size() {
        let rows = latency_figure(&verbs_omnipath(), 10, 1);
        for w in rows.windows(2) {
            assert!(w[1].rvma_ns > w[0].rvma_ns * 0.95);
        }
    }

    #[test]
    fn reduction_decays_with_size() {
        let rows = latency_figure(&verbs_omnipath(), 10, 1);
        assert!(rows.first().unwrap().reduction > 0.6);
        assert!(rows.last().unwrap().reduction < 0.05);
    }

    #[test]
    fn jitter_is_reproducible() {
        let a = latency_figure(&ucx_connectx5(), 10, 9);
        let b = latency_figure(&ucx_connectx5(), 10, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rdma_ns, y.rdma_ns);
            assert_eq!(x.rvma_sd, y.rvma_sd);
        }
    }

    #[test]
    fn stddev_is_small_but_nonzero() {
        let rows = latency_figure(&ucx_connectx5(), 10, 2);
        for r in rows {
            assert!(r.rdma_sd > 0.0);
            assert!(r.rdma_sd < 0.05 * r.rdma_ns);
        }
    }

    #[test]
    fn amortization_rows_decrease() {
        let rows = amortization_figure(&ucx_connectx5(), 0.03);
        assert!(rows.first().unwrap().exchanges_static > rows.last().unwrap().exchanges_static);
        for r in &rows {
            assert!(r.exchanges_adaptive <= r.exchanges_static);
            assert!(r.exchanges_static >= 1);
        }
    }

    #[test]
    fn small_message_amortization_needs_many_exchanges() {
        // The paper: "a large number of exchanges are needed to amortize
        // away setup costs".
        let rows = amortization_figure(&ucx_connectx5(), 0.03);
        assert!(
            rows[0].exchanges_static > 30,
            "got {}",
            rows[0].exchanges_static
        );
    }

    #[test]
    fn static_rdma_and_rvma_are_comparable() {
        // Paper: RVMA ~ statically-routed RDMA, regardless of routing.
        for m in [verbs_omnipath(), ucx_connectx5()] {
            for row in static_comparison(&m) {
                assert!(
                    row.overhead.abs() < 0.02,
                    "{} @{}B: overhead {:.3}",
                    m.name,
                    row.size,
                    row.overhead
                );
            }
        }
    }

    #[test]
    fn peak_reductions_match_paper() {
        assert!((peak_reduction(&verbs_omnipath()) - 0.658).abs() < 0.01);
        assert!((peak_reduction(&ucx_connectx5()) - 0.458).abs() < 0.01);
    }
}
