//! Primitive-cost model for RDMA/RVMA operations on real hardware.
//!
//! The paper's Figs. 4–6 are built by timing RDMA primitives on real
//! InfiniBand systems and *composing op sequences*: the RVMA numbers come
//! from removing the operations RVMA makes unnecessary (the completion
//! send/recv, the buffer-setup exchange), not from RVMA silicon. We
//! reproduce the same arithmetic over an alpha–beta cost model:
//!
//! * a put of `s` bytes costs `alpha + s / bandwidth`,
//! * the spec-compliant completion on adaptively-routed networks appends a
//!   1-byte send/recv fence costing `fence_overhead`,
//! * sharing an RDMA buffer costs `setup = registration + address
//!   exchange (RTT)` once per buffer.

use rvma_sim::{Bandwidth, SimTime};

/// Routing regime of the network under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Statically routed: byte-level ordering holds; RDMA may poll the last
    /// byte of the buffer for completion.
    Static,
    /// Adaptively routed: no ordering; spec-compliant RDMA needs a trailing
    /// send/recv per put.
    Adaptive,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Routing::Static => "static",
            Routing::Adaptive => "adaptive",
        })
    }
}

/// Calibrated primitive costs of one platform (NIC + CPU + fabric).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Per-operation base latency of an RDMA write (first byte in to
    /// completion-capable at the target), independent of size.
    pub alpha: SimTime,
    /// Link bandwidth (serialization term).
    pub bandwidth: Bandwidth,
    /// Extra latency of the completion send/recv + CQ processing appended
    /// to each put on adaptively-routed networks.
    pub fence_overhead: SimTime,
    /// Host memory-registration cost per shared buffer.
    pub registration: SimTime,
    /// One-way small-message latency (address exchange legs).
    pub small_msg: SimTime,
    /// Completion-pointer write cost on an RVMA NIC (host-bus posted write
    /// pipelined behind the final data DMA).
    pub rvma_completion: SimTime,
}

impl CostModel {
    /// Latency until the *target* can safely use an RVMA put of `size`
    /// bytes: wire + completion-pointer visibility. Identical on static and
    /// adaptive networks — the threshold count is order-independent.
    pub fn rvma_put(&self, size: u64) -> SimTime {
        self.alpha + self.bandwidth.serialization_time(size) + self.rvma_completion
    }

    /// Latency until the target can safely use an RDMA put of `size` bytes.
    pub fn rdma_put(&self, size: u64, routing: Routing) -> SimTime {
        let wire = self.alpha + self.bandwidth.serialization_time(size);
        match routing {
            // Last-byte polling: data visibility is completion.
            Routing::Static => wire,
            // Spec-compliant: the put is complete only after the trailing
            // send/recv is observed.
            Routing::Adaptive => wire + self.fence_overhead,
        }
    }

    /// One-time cost of sharing an RDMA buffer: pin + register, then
    /// exchange address/length (request + response legs).
    pub fn rdma_setup(&self) -> SimTime {
        self.registration + self.small_msg * 2
    }

    /// Latency reduction (fraction of RDMA latency saved by RVMA) at `size`
    /// under `routing`, ignoring setup amortization.
    pub fn reduction(&self, size: u64, routing: Routing) -> f64 {
        let rdma = self.rdma_put(size, routing).as_ns_f64();
        let rvma = self.rvma_put(size).as_ns_f64();
        (rdma - rvma) / rdma
    }

    /// Fig. 6: number of data exchanges needed before RDMA's buffer setup
    /// cost is amortized to within `tolerance` (e.g. 0.03 = 3 %) of the
    /// per-exchange latency.
    ///
    /// After `n` exchanges the per-exchange overhead is `setup / n`;
    /// amortized when `setup / n <= tolerance * latency(size)`.
    pub fn amortization_exchanges(&self, size: u64, routing: Routing, tolerance: f64) -> u64 {
        assert!(tolerance > 0.0);
        let setup = self.rdma_setup().as_ns_f64();
        let per_op = self.rdma_put(size, routing).as_ns_f64();
        (setup / (tolerance * per_op)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            name: "test",
            alpha: SimTime::from_ns(1000),
            bandwidth: Bandwidth::from_gbps(100),
            fence_overhead: SimTime::from_ns(1500),
            registration: SimTime::from_us(2),
            small_msg: SimTime::from_ns(1000),
            rvma_completion: SimTime::from_ns(0),
        }
    }

    #[test]
    fn rvma_put_is_alpha_beta() {
        let m = model();
        // 12500 bytes at 100 Gbps = 1000 ns of serialization.
        assert_eq!(m.rvma_put(12_500), SimTime::from_ns(2000));
    }

    #[test]
    fn rdma_static_equals_wire() {
        let m = model();
        assert_eq!(m.rdma_put(12_500, Routing::Static), SimTime::from_ns(2000));
    }

    #[test]
    fn rdma_adaptive_adds_fence() {
        let m = model();
        assert_eq!(
            m.rdma_put(12_500, Routing::Adaptive),
            SimTime::from_ns(3500)
        );
    }

    #[test]
    fn reduction_shrinks_with_size() {
        let m = model();
        let small = m.reduction(2, Routing::Adaptive);
        let large = m.reduction(4 << 20, Routing::Adaptive);
        assert!(small > large);
        assert!(small > 0.5, "small-message reduction {small}");
        assert!(large < 0.05, "large-message reduction {large}");
    }

    #[test]
    fn reduction_on_static_is_nonpositive_or_zero() {
        // Statically routed RDMA with last-byte polling matches RVMA (no
        // fence); RVMA's completion write costs ~nothing in this model.
        let m = model();
        assert!(m.reduction(4096, Routing::Static).abs() < 1e-9);
    }

    #[test]
    fn setup_is_registration_plus_rtt() {
        let m = model();
        assert_eq!(m.rdma_setup(), SimTime::from_ns(4000));
    }

    #[test]
    fn amortization_decreases_with_size() {
        let m = model();
        let n_small = m.amortization_exchanges(8, Routing::Static, 0.03);
        let n_large = m.amortization_exchanges(1 << 20, Routing::Static, 0.03);
        assert!(n_small > n_large);
        // 8B: per-op ~1000 ns; 4000/(0.03*1000) = 134.
        assert_eq!(n_small, 134);
    }

    #[test]
    fn amortization_fewer_exchanges_on_adaptive() {
        // Adaptive per-op latency is larger (fence), so the same setup is
        // relatively smaller: fewer exchanges to amortize.
        let m = model();
        let s = m.amortization_exchanges(8, Routing::Static, 0.03);
        let a = m.amortization_exchanges(8, Routing::Adaptive, 0.03);
        assert!(a < s);
    }
}
