//! # rvma-microbench — calibrated microbenchmark models (Figs. 4–6)
//!
//! The paper's first evaluation arm times RDMA primitives on real
//! InfiniBand hardware and derives RVMA's numbers by *removing* the
//! operations RVMA renders unnecessary (the completion send/recv on
//! adaptively-routed networks; the buffer-setup exchange). This crate
//! reproduces that arithmetic over a calibrated alpha–beta cost model:
//!
//! * [`CostModel`] — primitive costs and the op-sequence compositions,
//! * [`platforms`] — the two calibrated platforms (Verbs/OmniPath and
//!   UCX/ConnectX-5, matching the paper's testbeds),
//! * [`figures`] — row generators for Fig. 4 (Verbs latency), Fig. 5 (UCX
//!   latency, with run-to-run stddev), and Fig. 6 (setup amortization).
//!
//! See DESIGN.md for why this substitution preserves the figures' shape.

pub mod figures;
pub mod model;
pub mod platforms;

pub use figures::{
    amortization_figure, latency_figure, latency_sizes, peak_reduction, static_comparison,
    AmortizationRow, LatencyRow, StaticRow,
};
pub use model::{CostModel, Routing};
pub use platforms::{ucx_connectx5, verbs_omnipath};
