//! Property tests over the microbenchmark cost models: structural facts
//! that must hold for any calibration, not just the shipped constants.

use proptest::prelude::*;
use rvma_microbench::{CostModel, Routing};
use rvma_sim::{Bandwidth, SimTime};

prop_compose! {
    fn model_strategy()(
        alpha_ns in 100u64..5_000,
        gbps in 10u64..2_000,
        fence_ns in 100u64..5_000,
        reg_us in 1u64..10,
        small_ns in 100u64..3_000,
        compl_ns in 0u64..100,
    ) -> CostModel {
        CostModel {
            name: "prop",
            alpha: SimTime::from_ns(alpha_ns),
            bandwidth: Bandwidth::from_gbps(gbps),
            fence_overhead: SimTime::from_ns(fence_ns),
            registration: SimTime::from_us(reg_us),
            small_msg: SimTime::from_ns(small_ns),
            rvma_completion: SimTime::from_ns(compl_ns),
        }
    }
}

proptest! {
    /// On adaptive networks RVMA is never slower than spec-compliant RDMA,
    /// for any calibration (the fence is pure overhead; the completion
    /// write never exceeds it in any plausible regime we generate).
    #[test]
    fn rvma_dominates_adaptive_rdma(m in model_strategy(), size in 1u64..(8 << 20)) {
        prop_assume!(m.rvma_completion < m.fence_overhead);
        prop_assert!(m.rvma_put(size) < m.rdma_put(size, Routing::Adaptive));
    }

    /// Latency is monotone non-decreasing in message size.
    #[test]
    fn latency_monotone_in_size(m in model_strategy(), size in 1u64..(4 << 20)) {
        prop_assert!(m.rvma_put(size + 4096) >= m.rvma_put(size));
        prop_assert!(
            m.rdma_put(size + 4096, Routing::Adaptive) >= m.rdma_put(size, Routing::Adaptive)
        );
    }

    /// Reduction is in (0, 1) on adaptive networks and decays with size.
    #[test]
    fn reduction_bounded_and_decaying(m in model_strategy()) {
        prop_assume!(m.rvma_completion < m.fence_overhead);
        let small = m.reduction(2, Routing::Adaptive);
        let large = m.reduction(8 << 20, Routing::Adaptive);
        prop_assert!(small > 0.0 && small < 1.0);
        prop_assert!(large > 0.0 && large < 1.0);
        prop_assert!(small >= large);
    }

    /// Amortization count is monotone in tolerance: a looser margin never
    /// needs more exchanges.
    #[test]
    fn amortization_monotone_in_tolerance(
        m in model_strategy(),
        size in 1u64..(1 << 20),
    ) {
        let tight = m.amortization_exchanges(size, Routing::Static, 0.01);
        let loose = m.amortization_exchanges(size, Routing::Static, 0.10);
        prop_assert!(loose <= tight);
        prop_assert!(loose >= 1);
    }

    /// Setup cost is routing-independent and strictly positive.
    #[test]
    fn setup_positive(m in model_strategy()) {
        prop_assert!(m.rdma_setup() > SimTime::ZERO);
        prop_assert!(m.rdma_setup() >= m.registration);
    }
}
