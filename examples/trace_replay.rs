//! Trace-driven workload replay: evaluate your own communication pattern
//! under RDMA vs RVMA.
//!
//! Builds a small producer/consumer pipeline trace by hand — the same
//! structure you would load from an application trace — and replays it on
//! an adaptive dragonfly under both protocols.
//!
//! Run with: `cargo run --release --example trace_replay`

use rvma::motifs::{run_motif, ReplayNode, Trace, TraceOp};
use rvma::net::fabric::FabricConfig;
use rvma::net::router::RoutingKind;
use rvma::net::topology::{dragonfly, DragonflyParams};
use rvma::nic::{NicConfig, Protocol};
use rvma::sim::SimTime;

fn main() {
    // A 4-stage pipeline over 8 nodes: stage i (nodes 2i, 2i+1) receives a
    // block, computes, and forwards to stage i+1. Node 0 additionally
    // issues one-sided reads back to stage 0's partner for metadata.
    let mut t = Trace::new(8);
    let block = 256 * 1024;
    for round in 0..4u64 {
        for stage in 0..3u32 {
            for lane in 0..2u32 {
                let me = stage * 2 + lane;
                let next = me + 2;
                if stage > 0 {
                    t.push(
                        me,
                        TraceOp::WaitRecv {
                            tag: 9,
                            count: round + 1,
                        },
                    );
                }
                t.push(me, TraceOp::Compute(SimTime::from_us(3)));
                t.push(
                    me,
                    TraceOp::Send {
                        dst: next,
                        tag: 9,
                        bytes: block,
                    },
                );
            }
        }
        // The sink stage consumes.
        for lane in 0..2u32 {
            t.push(
                6 + lane,
                TraceOp::WaitRecv {
                    tag: 9,
                    count: round + 1,
                },
            );
        }
        // A metadata read-back, one-sided.
        t.push(
            0,
            TraceOp::Get {
                dst: 1,
                tag: 77,
                bytes: 4096,
            },
        );
    }

    println!(
        "replaying a 4-round, 4-stage pipeline trace ({} sends) on an adaptive dragonfly\n",
        t.total_sends()
    );
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    for proto in [Protocol::Rdma, Protocol::Rvma] {
        let r = run_motif(
            &spec,
            &FabricConfig::at_gbps(400),
            NicConfig::default(),
            proto,
            9,
            |n| {
                if n < 8 {
                    Box::new(ReplayNode::new(&t, n)) as _
                } else {
                    Box::new(rvma::motifs::IdleNode) as _
                }
            },
        );
        println!(
            "  {:<4} makespan {:>8.1} us  ({} msgs, {} handshakes, {} fences)",
            proto.to_string(),
            r.makespan_us(),
            r.msgs_sent,
            r.handshakes,
            r.fences
        );
    }
}
