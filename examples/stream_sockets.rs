//! Receiver-Managed RVMA: the sockets-like mode (paper Sec. IV-B).
//!
//! In `Managed` mode the receiver assigns placement: arrivals are appended
//! at a cursor, like a TCP stream filling a recv buffer, and the epoch
//! completes when the buffer fills (or early, via `inc_epoch`, when the
//! application wants whatever has arrived so far — the unknown-message-size
//! case of `RVMA_Win_inc_epoch`).
//!
//! Run with: `cargo run --example stream_sockets`

use rvma::core::{LoopbackNetwork, MailboxMode, NodeAddr, Threshold, VirtAddr};

fn main() -> Result<(), rvma::core::RvmaError> {
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let port = VirtAddr::from_net_port(0x7F00_0001, 8080);

    // A stream "socket": 4 KiB receive buffers, receiver-assigned placement.
    let win = server.init_window_mode(port, Threshold::bytes(4096), MailboxMode::Managed)?;

    // The client writes three segments of different sizes — no offsets.
    let mut n0 = win.post_buffer(vec![0u8; 4096])?;
    client.put(NodeAddr::node(0), port, b"GET /index.html HTTP/1.1\r\n")?;
    client.put(NodeAddr::node(0), port, b"Host: rvma.example\r\n")?;
    client.put(NodeAddr::node(0), port, b"\r\n")?;

    // The server doesn't know the request size in advance: it takes
    // whatever has arrived so far (stream semantics).
    win.inc_epoch()?;
    let buf = n0.poll().expect("partial buffer handed to software");
    let text = std::str::from_utf8(buf.data()).expect("utf8");
    println!(
        "server got {} bytes (epoch {}):\n{text}",
        buf.len(),
        buf.epoch()
    );
    assert!(text.starts_with("GET /index.html"));
    assert!(text.ends_with("\r\n\r\n"));

    // Next epoch continues the stream in a fresh buffer, cursor reset.
    let mut n1 = win.post_buffer(vec![0u8; 4096])?;
    client.put(NodeAddr::node(0), port, b"POST /data HTTP/1.1\r\n\r\n")?;
    win.inc_epoch()?;
    let buf = n1.poll().expect("second request");
    println!(
        "second request, {} bytes: {:?}",
        buf.len(),
        std::str::from_utf8(buf.data()).unwrap()
    );
    Ok(())
}
