//! A real multi-threaded halo exchange over RVMA.
//!
//! Four workers arranged in a 2×2 grid run a Jacobi-style iteration: each
//! owns a tile, exchanges edge halos with its neighbours through RVMA
//! mailboxes (one mailbox per incoming edge), and averages. This is the
//! library used as an actual communication layer — threads as "nodes",
//! offsets-as-placement, pre-posted buffer buckets as the iteration
//! pipeline — not a timing simulation.
//!
//! Run with: `cargo run --example halo_exchange`

use rvma::core::{LoopbackNetwork, NodeAddr, Notification, Threshold, VirtAddr, Window};
use std::sync::Arc;

const N: usize = 64; // tile edge (elements)
const ITERS: usize = 20;
const GRID: usize = 2; // 2x2 workers

/// Mailbox address for halos flowing `from` → `to`. One mailbox per
/// directed neighbour pair; epochs handle per-iteration buffer rotation,
/// so the address never changes.
fn halo_addr(from: usize, to: usize) -> VirtAddr {
    VirtAddr::from_net_port(from as u32, to as u32)
}

fn neighbors(rank: usize) -> Vec<usize> {
    let (x, y) = (rank % GRID, rank / GRID);
    let mut out = Vec::new();
    if x + 1 < GRID {
        out.push(rank + 1);
    }
    if x > 0 {
        out.push(rank - 1);
    }
    if y + 1 < GRID {
        out.push(rank + GRID);
    }
    if y > 0 {
        out.push(rank - GRID);
    }
    out
}

struct Inbox {
    _window: Window,
    /// Pre-posted bucket: notification for iteration i at index i.
    pending: Vec<Notification>,
}

fn main() {
    let net = LoopbackNetwork::new();

    // Register endpoints and, per worker, one window per incoming
    // neighbour with ITERS pre-posted buffers (a deep bucket: senders
    // never wait on the receiver).
    let mut inboxes: Vec<Vec<(usize, Inbox)>> = Vec::new();
    for rank in 0..GRID * GRID {
        net.add_endpoint(NodeAddr::node(rank as u32));
    }
    for rank in 0..GRID * GRID {
        let ep = net.endpoint(NodeAddr::node(rank as u32)).expect("endpoint");
        let mut windows = Vec::new();
        for from in neighbors(rank) {
            let window = ep
                .init_window(halo_addr(from, rank), Threshold::bytes((N * 8) as u64))
                .expect("window");
            let pending = window
                .post_buffers(vec![vec![0u8; N * 8]; ITERS])
                .expect("post bucket");
            windows.push((
                from,
                Inbox {
                    _window: window,
                    pending,
                },
            ));
        }
        inboxes.push(windows);
    }

    let results: Vec<f64> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (rank, windows) in inboxes.into_iter().enumerate() {
            let net: Arc<LoopbackNetwork> = net.clone();
            handles.push(s.spawn(move || worker(rank, windows, net)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    println!("final tile means: {results:?}");
    // Jacobi averaging pulls every tile toward the global mean.
    let avg = results.iter().sum::<f64>() / results.len() as f64;
    assert!(results.iter().all(|m| (m - avg).abs() < 1.0));
    println!(
        "halo exchange over RVMA: {ITERS} iterations, {} workers, OK",
        GRID * GRID
    );
}

fn worker(rank: usize, mut windows: Vec<(usize, Inbox)>, net: Arc<LoopbackNetwork>) -> f64 {
    let init = net.initiator(NodeAddr::node(rank as u32));
    let mut tile = vec![rank as f64 * 100.0; N];

    for iter in 0..ITERS {
        // Send my edge to each neighbour's mailbox for me.
        let edge: Vec<u8> = tile.iter().flat_map(|v| v.to_le_bytes()).collect();
        for (peer, _) in &windows {
            init.put(NodeAddr::node(*peer as u32), halo_addr(rank, *peer), &edge)
                .expect("halo put");
        }
        // Wait for this iteration's halo from every neighbour. Epoch order
        // is FIFO over the pre-posted bucket, so index = iteration.
        let mut incoming = Vec::new();
        for (_, inbox) in &mut windows {
            let buf = inbox.pending[iter].wait();
            debug_assert_eq!(buf.epoch() as usize, iter);
            incoming.push(
                buf.data()
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect::<Vec<f64>>(),
            );
        }
        // Jacobi-ish relaxation against the neighbour edges.
        for i in 0..N {
            let mut acc = tile[i];
            for h in &incoming {
                acc += h[i];
            }
            tile[i] = acc / (incoming.len() + 1) as f64;
        }
    }
    tile.iter().sum::<f64>() / N as f64
}
