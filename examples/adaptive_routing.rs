//! Adaptive routing demo: RVMA completes correctly in ANY packet order.
//!
//! The paper's central correctness claim (Sec. IV-D): because placement
//! uses offsets and completion uses counts, an RVMA buffer "could be
//! written in reverse order with no performance impact" — no byte-level
//! network ordering is needed. This example sends the same payload over an
//! in-order network and over an out-of-order network (the adaptive-routing
//! emulation) and shows bit-identical results, then demonstrates a
//! many-to-one op-counted window fed by 8 concurrent senders.
//!
//! Run with: `cargo run --example adaptive_routing`

use rvma::core::{DeliveryOrder, LoopbackNetwork, NodeAddr, Threshold, VirtAddr};

fn one_transfer(order: DeliveryOrder) -> Vec<u8> {
    // Tiny MTU so a 4 KiB message becomes 64 fragments worth shuffling.
    let net = LoopbackNetwork::with_options(64, order);
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let win = server
        .init_window(VirtAddr::new(0xF00D), Threshold::bytes(4096))
        .expect("window");
    let mut note = win.post_buffer(vec![0u8; 4096]).expect("post");

    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    client
        .put(NodeAddr::node(0), VirtAddr::new(0xF00D), &payload)
        .expect("put");
    note.poll().expect("threshold reached").data().to_vec()
}

fn main() {
    let ordered = one_transfer(DeliveryOrder::InOrder);
    let shuffled = one_transfer(DeliveryOrder::OutOfOrder { seed: 2026 });
    assert_eq!(ordered, shuffled);
    println!(
        "4096-byte message, 64 fragments: in-order and out-of-order delivery \
         produced identical buffers ({} bytes) — no fence needed.",
        ordered.len()
    );

    // Many-to-one: 8 concurrent senders, one op-counted window. The
    // receiver dedicates nothing per client (the paper's many-to-one
    // motivation) and wakes once, when the 8th op lands.
    let net = LoopbackNetwork::with_options(64, DeliveryOrder::OutOfOrder { seed: 7 });
    let server = net.add_endpoint(NodeAddr::node(0));
    let win = server
        .init_window(VirtAddr::new(0xBEEF), Threshold::ops(8))
        .expect("window");
    let mut note = win.post_buffer(vec![0u8; 8 * 64]).expect("post");

    std::thread::scope(|s| {
        for t in 0..8u32 {
            let client = net.initiator(NodeAddr::node(t + 1));
            s.spawn(move || {
                client
                    .put_at(
                        NodeAddr::node(0),
                        VirtAddr::new(0xBEEF),
                        t as usize * 64,
                        &[t as u8 + 1; 64],
                    )
                    .expect("put");
            });
        }
    });
    let buf = note.wait();
    println!(
        "many-to-one: 8 senders, op threshold 8 -> one completion, epoch {}, \
         slots = {:?}",
        buf.epoch(),
        (0..8)
            .map(|i| buf.full_buffer()[i * 64])
            .collect::<Vec<_>>()
    );
    let stats = server.stats();
    println!(
        "endpoint stats: {} fragments, {} bytes, {} epochs completed",
        stats.fragments_accepted, stats.bytes_accepted, stats.epochs_completed
    );
}
