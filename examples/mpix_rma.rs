//! MPI-RMA-style epochs over RVMA, with a truly asynchronous network.
//!
//! Combines the two extension layers: [`MpixWindow`] (paper Sec. IV-E/IV-F:
//! epochs as fences, `MPIX_Rewind`) and [`AsyncNetwork`] (deliveries on a
//! background wire thread, so fences really park until remote data lands).
//!
//! Run with: `cargo run --example mpix_rma`

use rvma::core::mpix::MpixWindow;
use rvma::core::{AsyncNetwork, DeliveryOrder, NodeAddr, VirtAddr};
use std::time::Duration;

const STEP_BYTES: u64 = 512;

fn main() -> Result<(), rvma::core::RvmaError> {
    // Out-of-order wire with 1 ms delivery latency: puts return instantly,
    // fences genuinely wait.
    let net = AsyncNetwork::new(
        128,
        DeliveryOrder::OutOfOrder { seed: 1 },
        Duration::from_millis(1),
    );
    let server = net.add_endpoint(NodeAddr::node(0));
    let peer = net.initiator(NodeAddr::node(1));
    let window_addr = VirtAddr::new(0x11FF_0011);

    // A 512-byte RMA window with 3 epochs of rewind history and a depth-4
    // bucket (remote puts never stall on an unposted epoch).
    let mut win = MpixWindow::create(&server, window_addr, STEP_BYTES, 4)?;

    // Three "timesteps": the peer exposes boundary data each epoch.
    for step in 1..=3u8 {
        peer.put(
            NodeAddr::node(0),
            window_addr,
            &vec![step; STEP_BYTES as usize],
        )?;
        let epoch = win.fence(); // MPI_Win_fence: parks until the epoch fills
        println!(
            "fence: epoch {} complete, {} bytes of {:#x}",
            epoch.epoch(),
            epoch.len(),
            epoch.data()[0]
        );
    }

    // try_fence is non-blocking: nothing in flight, so it reports None.
    assert!(win.try_fence().is_none());

    // MPIX_Rewind: roll the window back two timesteps.
    let recovered = win.rewind(2)?;
    println!(
        "MPIX_Rewind(2): recovered epoch {} contents {:#x}",
        recovered.epoch(),
        recovered.data()[0]
    );
    assert_eq!(recovered.data(), vec![2u8; STEP_BYTES as usize].as_slice());

    // A partial epoch can be flushed to software (error-recovery path).
    peer.put_at(NodeAddr::node(0), window_addr, 0, &[9u8; 100])?;
    net.quiesce();
    let partial = win.flush_partial()?;
    println!("flush_partial: {} of {} bytes", partial.len(), STEP_BYTES);
    assert_eq!(partial.len(), 100);

    win.close();
    println!("window closed; epochs completed: 4");
    Ok(())
}
