//! Drive the full simulation stack from user code: a Sweep3D wavefront on
//! an adaptively-routed dragonfly, RDMA vs RVMA — a miniature of the
//! paper's Fig. 7 experiment.
//!
//! Run with: `cargo run --release --example sweep3d_simulation`

use rvma::motifs::{compare_protocols, Sweep3dConfig, Sweep3dNode};
use rvma::net::fabric::FabricConfig;
use rvma::net::router::RoutingKind;
use rvma::net::topology::{dragonfly, DragonflyParams};
use rvma::nic::{HostLogic, NicConfig};
use rvma::sim::SimTime;

fn main() {
    // A 72-terminal dragonfly with UGAL adaptive routing; 64 active nodes.
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    let motif = Sweep3dConfig {
        pgrid: [8, 8],
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    println!(
        "Sweep3D on {} — 8x8 process grid, {} z-blocks x 8 octants, 400 Gbps links",
        spec.name,
        motif.blocks()
    );

    let nodes = motif.nodes();
    let (rdma, rvma, speedup) = compare_protocols(
        &spec,
        &FabricConfig::at_gbps(400),
        NicConfig::default(),
        2026,
        |n| {
            if n < nodes {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            } else {
                Box::new(rvma::motifs::IdleNode) as Box<dyn HostLogic>
            }
        },
    );

    println!(
        "\n  RDMA: {:>9.1} us  ({} msgs, {} fences, {} RTR credits, {} handshakes)",
        rdma.makespan_us(),
        rdma.msgs_sent,
        rdma.fences,
        rdma.rtrs,
        rdma.handshakes
    );
    println!(
        "  RVMA: {:>9.1} us  ({} msgs, {} fences, {} RTR credits, {} handshakes)",
        rvma.makespan_us(),
        rvma.msgs_sent,
        rvma.fences,
        rvma.rtrs,
        rvma.handshakes
    );
    println!("\n  RVMA speedup: {speedup:.2}x (paper Fig. 7: 2-4.4x depending on link speed)");
    assert!(speedup > 1.0);
}
