//! Fault-tolerant RDMA via multi-epoch rewind (paper Sec. IV-F).
//!
//! A timestep simulation receives one boundary buffer per step into an
//! RVMA mailbox. The mailbox's bucket retains retired buffers, so when a
//! "node failure" corrupts the computation at step 3, the application
//! rewinds communication to the last known-good epoch — the paper's
//! `MPIX_Rewind(MPI_Win)` sketch — and resumes from there. No sender
//! cooperation is needed; the buffers are already on the receiver.
//!
//! Run with: `cargo run --example fault_tolerance`

use rvma::core::api::{rvma_win_get_epoch, rvma_win_rewind};
use rvma::core::{LoopbackNetwork, NodeAddr, Threshold, VirtAddr};

const STEP_BYTES: u64 = 256;

fn main() -> Result<(), rvma::core::RvmaError> {
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(0));
    let peer = net.initiator(NodeAddr::node(1));
    let mailbox = VirtAddr::new(0x7157); // "TIST": timestep boundary data

    let win = server.init_window(mailbox, Threshold::bytes(STEP_BYTES))?;

    // Simulate 5 timesteps: the peer sends boundary data stamped with the
    // step number; the application folds it into its state.
    let mut state: u64 = 0;
    let mut checkpoints = vec![state];
    for step in 1..=5u8 {
        let mut note = win.post_buffer(vec![0u8; STEP_BYTES as usize])?;
        peer.put(NodeAddr::node(0), mailbox, &vec![step; STEP_BYTES as usize])?;
        let buf = note.wait();
        state += buf.data().iter().map(|&b| b as u64).sum::<u64>();
        checkpoints.push(state);
        println!(
            "step {step}: consumed epoch {}, state = {state}",
            buf.epoch()
        );
    }

    // Disaster: the node "fails" and loses the results of steps 4 and 5.
    println!("\n*** failure! local state lost — rolling back two steps ***\n");
    let lost_state = checkpoints[3];

    // Hardware rewind: retrieve the boundary buffers of the two previous
    // epochs straight from the NIC's retired list and replay them.
    let epoch_now = rvma_win_get_epoch(&win);
    let replay4 = rvma_win_rewind(&win, 2)?; // epoch 3 (step 4)
    let replay5 = rvma_win_rewind(&win, 1)?; // epoch 4 (step 5)
    println!(
        "rewind from epoch {epoch_now}: recovered buffers for epochs {} and {}",
        replay4.epoch(),
        replay5.epoch()
    );

    let mut recovered = lost_state;
    for buf in [&replay4, &replay5] {
        recovered += buf.data().iter().map(|&b| b as u64).sum::<u64>();
    }
    println!(
        "replayed state = {recovered}, original = {}",
        checkpoints[5]
    );
    assert_eq!(recovered, checkpoints[5]);

    // Rewinding past the retained ring is a clean error, not a surprise.
    match rvma_win_rewind(&win, 99) {
        Err(e) => println!("rewind(99) correctly refused: {e}"),
        Ok(_) => unreachable!(),
    }
    Ok(())
}
