//! Quickstart: the RVMA flow of paper Fig. 3, end to end.
//!
//! A receiver opens a window (a virtual mailbox address), posts buffers
//! with a byte threshold, and a sender puts data at it — no address
//! exchange, no handshake. The receiver learns of completion through the
//! buffer's own completion pointer.
//!
//! Run with: `cargo run --example quickstart`

use rvma::core::{LoopbackNetwork, NodeAddr, Threshold, VirtAddr};

fn main() -> Result<(), rvma::core::RvmaError> {
    // An in-process "network" connecting endpoints (the software NIC).
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));

    // Receiver side: one mailbox; each posted buffer completes after 1 KiB.
    let mailbox = VirtAddr::from_net_port(0x0A00_0001, 4242); // IP/port-style
    let win = server.init_window(mailbox, Threshold::bytes(1024))?;

    // Post a bucket of two buffers: epoch 0 and epoch 1.
    let mut n0 = win.post_buffer(vec![0u8; 1024])?;
    let mut n1 = win.post_buffer(vec![0u8; 1024])?;
    println!("receiver: window {mailbox} open, 2 buffers posted");

    // Sender side: just put. The mailbox address is all it knows.
    client.put(NodeAddr::node(0), mailbox, &[7u8; 1024])?;
    println!("sender:   put #1 done (no handshake, no remote address)");

    // Receiver: the completion pointer for buffer 0 has been written.
    let buf = n0.poll().expect("epoch 0 complete");
    println!(
        "receiver: epoch {} complete, {} bytes, first byte {}",
        buf.epoch(),
        buf.len(),
        buf.data()[0]
    );

    // Two 512-byte puts with offsets assemble one contiguous 1 KiB message
    // in the *next* buffer of the bucket (paper Sec. III-B).
    client.put_at(NodeAddr::node(0), mailbox, 0, &[1u8; 512])?;
    client.put_at(NodeAddr::node(0), mailbox, 512, &[2u8; 512])?;
    let buf = n1.wait(); // Monitor/MWait-style wait
    println!(
        "receiver: epoch {} complete, halves = ({}, {})",
        buf.epoch(),
        buf.data()[0],
        buf.data()[1023]
    );
    assert_eq!(win.epoch(), 2);

    // Close the window: further puts are NACKed.
    win.close();
    let err = client
        .put(NodeAddr::node(0), mailbox, &[0u8; 16])
        .unwrap_err();
    println!("sender:   put after close -> {err}");
    Ok(())
}
