//! Offline shim of the `waker-fn` crate: wrap a closure in a
//! [`std::task::Waker`]. Used by tests that need to observe *when* and
//! *how often* a future's waker fires (e.g. the exactly-one-wake
//! assertions of the async notification suite).

use std::sync::Arc;
use std::task::{Wake, Waker};

struct Helper<F>(F);

impl<F: Fn() + Send + Sync + 'static> Wake for Helper<F> {
    fn wake(self: Arc<Self>) {
        (self.0)();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        (self.0)();
    }
}

/// A [`Waker`] that invokes `f` on every `wake`/`wake_by_ref`.
pub fn waker_fn<F: Fn() + Send + Sync + 'static>(f: F) -> Waker {
    Waker::from(Arc::new(Helper(f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn closure_fires_per_wake() {
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        let waker = waker_fn(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        waker.wake_by_ref();
        waker.wake_by_ref();
        // A clone must wake the same closure (by-value consumption path).
        let cloned = waker.clone();
        cloned.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
