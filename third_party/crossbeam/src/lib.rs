//! Offline shim for `crossbeam`: only `crossbeam::channel`'s unbounded
//! MPSC subset, implemented over `std::sync::mpsc`. Unlike the real crate
//! the receiver is single-consumer (not `Clone`/`Sync`) — every use in this
//! workspace moves each receiver into exactly one thread.

pub mod channel {
    use std::fmt;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next message; fails when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty,
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_receiver_drop_fails() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
