//! Offline shim of the `pollster` crate: `block_on` drives one future to
//! completion on the calling thread, parking on a condvar between polls.
//!
//! This is the whole executor the workspace needs — RVMA's futures
//! ([`NotifyFuture`](../rvma_core/notify/struct.NotifyFuture.html),
//! `PutFuture`, `CqReady`) are runtime-agnostic and wake through their own
//! `AtomicWaker`s, so a single-future, single-thread driver suffices for
//! tests and benches. No `Send` bound is required of the future; only the
//! waker crosses threads.

use std::future::Future;
use std::pin::pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// The thread-parking primitive behind `block_on`: a boolean "wake was
/// requested" flag under a mutex, so a wake arriving *between* a poll
/// returning `Pending` and the blocked thread reaching `wait` is never
/// lost (the flag is already set and `wait` returns immediately).
struct Signal {
    notified: Mutex<bool>,
    cond: Condvar,
}

impl Signal {
    fn new() -> Signal {
        Signal {
            notified: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut notified = self.notified.lock().unwrap();
        while !*notified {
            notified = self.cond.wait(notified).unwrap();
        }
        *notified = false;
    }

    fn notify(&self) {
        *self.notified.lock().unwrap() = true;
        self.cond.notify_one();
    }
}

impl Wake for Signal {
    fn wake(self: Arc<Self>) {
        self.notify();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notify();
    }
}

/// Block the calling thread until `fut` resolves, returning its output.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = pin!(fut);
    let signal = Arc::new(Signal::new());
    let waker = Waker::from(signal.clone());
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => signal.wait(),
        }
    }
}

/// Extension-method form: `fut.block_on()`.
pub trait FutureExt: Future + Sized {
    /// Block the calling thread until this future resolves.
    fn block_on(self) -> Self::Output {
        block_on(self)
    }
}

impl<F: Future + Sized> FutureExt for F {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::Poll;

    #[test]
    fn ready_future_returns_immediately() {
        assert_eq!(block_on(std::future::ready(42)), 42);
    }

    #[test]
    fn pending_future_woken_from_another_thread() {
        struct Flag(Arc<Mutex<(bool, Option<Waker>)>>);
        impl Future for Flag {
            type Output = u32;
            fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                let mut g = self.0.lock().unwrap();
                if g.0 {
                    Poll::Ready(7)
                } else {
                    g.1 = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let shared = Arc::new(Mutex::new((false, None::<Waker>)));
        let setter = shared.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut g = setter.lock().unwrap();
            g.0 = true;
            if let Some(w) = g.1.take() {
                w.wake();
            }
        });
        assert_eq!(block_on(Flag(shared)), 7);
        t.join().unwrap();
    }

    #[test]
    fn extension_method_compiles() {
        assert_eq!(std::future::ready("ok").block_on(), "ok");
    }
}
