//! Offline shim for `rand_chacha`: provides the `ChaCha8Rng` type name the
//! workspace seeds via `seed_from_u64`. The stream is SplitMix64 (salted so
//! it differs from the `rand` shim's `StdRng` for the same seed), NOT real
//! ChaCha — deterministic per seed and stable across platforms, which is
//! the only property callers rely on.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator standing in for ChaCha8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Salt so ChaCha8Rng(seed) and the rand shim's StdRng(seed) diverge.
        ChaCha8Rng {
            state: seed ^ 0x6A09_E667_F3BC_C908,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_clonable() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = a.clone();
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }
}
