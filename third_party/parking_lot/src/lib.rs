//! Offline shim for `parking_lot`: the lock API this workspace uses,
//! implemented over `std::sync`. Poisoning is swallowed (parking_lot has
//! none), and `Condvar::wait` takes the guard by `&mut` like parking_lot's.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection exists so
/// [`Condvar::wait`] can temporarily take the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable taking parking_lot-style `&mut MutexGuard` waits.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, deadline - now) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
