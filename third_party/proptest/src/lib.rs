//! Offline shim for `proptest`: the macro + strategy subset this workspace
//! uses. Cases are generated from a fixed-seed deterministic RNG and run
//! `ProptestConfig::cases` times; there is NO shrinking and NO failure
//! persistence — a failing case panics with the assertion message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngCore, SampleUniform, SeedableRng};

/// Deterministic RNG driving all strategies in one test fn.
pub struct TestRng(StdRng);

impl TestRng {
    /// Fixed-seed generator: every run of a test sees the same case stream.
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// A `prop_assume!` filtered the case out; the run continues.
    Reject(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-assumption marker.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test fn.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike upstream there is no value tree: `generate`
/// yields a plain value and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Strategy wrapping a closure; used by `prop_compose!`.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::SampleUniform;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = usize::sample_range(rng, self.size.start, self.size.end);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define `#[test]` fns over generated inputs. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy, ...)`
/// items, mirroring upstream's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(@cfg ($cfg) $($rest)*);
    };
}

/// Define a named strategy fn from sub-strategies (upstream's surface form).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($params:tt)*)($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Assert inside a proptest body; on failure returns `TestCaseError::Fail`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: `{:?}` != `{:?}`",
                __left, __right
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both `{:?}`",
                __left
            )));
        }
    }};
}

/// Skip cases violating a precondition (counts toward `cases` here, unlike
/// upstream which resamples).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 1u64..10, b in 10u64..20) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, v in vec(1usize..64, 1..12)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(v.iter().all(|&e| (1..64).contains(&e)));
        }

        #[test]
        fn composed_strategy_and_assume(p in pair(), any_u in any::<u64>()) {
            prop_assume!(p.0 != 5);
            prop_assert!(p.0 < p.1, "pair ordered: {:?}", p);
            prop_assert_eq!(any_u, any_u);
            prop_assert_ne!(p.0, p.1);
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        let sa: Vec<u64> = (0..8)
            .map(|_| crate::Strategy::generate(&(0u64..100), &mut a))
            .collect();
        let sb: Vec<u64> = (0..8)
            .map(|_| crate::Strategy::generate(&(0u64..100), &mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
