//! Offline shim for `rand` 0.9: the API subset this workspace uses, backed
//! by a SplitMix64 generator. Streams are deterministic per seed and stable
//! across platforms, which is the only property the workspace relies on —
//! they do NOT match upstream `StdRng` output and carry no cryptographic
//! strength.

use std::ops::Range;

/// Low-level generator interface: a source of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly over a half-open `low..high` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a uniform value in `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                // Widen to u128 so `0..u64::MAX` spans don't overflow.
                let span = (high as i128 - low as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        // 53 high bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Types producible by [`Rng::random`].
pub trait FromRng {
    /// Draw one value from the full distribution of the type.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_range(rng, 0.0, 1.0)
    }
}

/// High-level draws; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// One value of `T` (e.g. `rng.random::<u64>()`).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random::<f64>() < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's default RNG: SplitMix64. Deterministic per seed;
    /// not the upstream StdRng algorithm.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice randomization.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..(i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = r.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let full = r.random_range(0..u64::MAX);
            assert!(full < u64::MAX);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }
}
