//! Offline shim for `criterion`: runs each benchmark closure a fixed number
//! of iterations and prints a wall-clock mean ns/iter. No statistics,
//! warm-up analysis, plots, or baselines — just enough to keep `cargo bench`
//! targets compiling and producing comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (upstream: sample count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name, b.mean_ns, None);
    }
}

/// Per-iteration payload size, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("variant", param)` renders as `variant/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_ns,
            self.throughput,
        );
    }

    /// End the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
            let gbps = bytes as f64 / mean_ns; // bytes/ns == GB/s
            println!("bench {name:<55} {mean_ns:>12.0} ns/iter  {gbps:>8.3} GB/s");
        }
        _ => println!("bench {name:<55} {mean_ns:>12.0} ns/iter"),
    }
}

/// Define a runner fn over benchmark targets (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 1024), &1024usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        g.finish();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
