//! Offline shim for `bytes`: the [`Bytes`] subset this workspace uses — a
//! cheaply cloneable, sliceable, immutable byte buffer backed by
//! `Arc<[u8]>`. Clones and slices share one allocation; no copy-on-write
//! or buffer-mutation APIs are provided.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared beyond a static empty slice).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Copy `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            end: data.len(),
            data: Arc::from(data),
            start: 0,
        }
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            end: v.len(),
            data: Arc::from(v),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn empty_and_copy() {
        assert!(Bytes::new().is_empty());
        let c = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(c, Bytes::from(vec![9, 9]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }
}
