//! Offline shim for `bytes`: the [`Bytes`] subset this workspace uses — a
//! cheaply cloneable, sliceable, immutable byte buffer. Large buffers are
//! backed by `Arc<[u8]>` (clones and slices share one allocation); buffers
//! of at most [`INLINE_CAP`] bytes are stored inline in the handle itself,
//! so small-message payloads carry no allocation and no reference count at
//! all. No copy-on-write or buffer-mutation APIs are provided.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Largest view stored inline (no allocation, no refcount). Sized so the
/// handle stays within a few words; small-message datapaths lean on this.
pub const INLINE_CAP: usize = 24;

#[derive(Clone)]
enum Repr {
    /// The bytes live in the handle; clones and slices copy (at most
    /// [`INLINE_CAP`] bytes — cheaper than touching a refcount).
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// The bytes live in a shared allocation; clones and slices share it.
    Shared {
        data: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

/// An immutable byte buffer: inline below [`INLINE_CAP`] bytes,
/// reference-counted above.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            repr: Repr::Inline {
                len: 0,
                buf: [0; INLINE_CAP],
            },
        }
    }

    fn inline(data: &[u8]) -> Self {
        debug_assert!(data.len() <= INLINE_CAP);
        let mut buf = [0; INLINE_CAP];
        buf[..data.len()].copy_from_slice(data);
        Bytes {
            repr: Repr::Inline {
                len: data.len() as u8,
                buf,
            },
        }
    }

    /// Copy `data` into the buffer: inline when it fits, otherwise a fresh
    /// shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= INLINE_CAP {
            Bytes::inline(data)
        } else {
            Bytes {
                repr: Repr::Shared {
                    end: data.len(),
                    data: Arc::from(data),
                    start: 0,
                },
            }
        }
    }

    /// Wrap the first `len` bytes of an existing shared allocation without
    /// copying (shim extension; the real crate reaches the same shape via
    /// `BytesMut::freeze`). This is what lets a buffer pool hand out
    /// recycled allocations as `Bytes` views — the view always shares, so
    /// the pool can watch the refcount to learn when the allocation is
    /// free again.
    ///
    /// # Panics
    /// Panics if `len` exceeds the allocation's length.
    pub fn from_shared(data: Arc<[u8]>, len: usize) -> Self {
        assert!(len <= data.len(), "from_shared out of bounds");
        Bytes {
            repr: Repr::Shared {
                data,
                start: 0,
                end: len,
            },
        }
    }

    /// A sub-slice of this buffer: zero-copy (sharing the allocation) for
    /// shared buffers, a copy of at most [`INLINE_CAP`] bytes for inline
    /// ones.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        match &self.repr {
            Repr::Inline { buf, .. } => Bytes::inline(&buf[begin..end]),
            Repr::Shared { data, start, .. } => Bytes {
                repr: Repr::Shared {
                    data: data.clone(),
                    start: start + begin,
                    end: start + end,
                },
            },
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared { start, end, .. } => end - start,
        }
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared { data, start, end } => &data[*start..*end],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.len() <= INLINE_CAP {
            Bytes::inline(&v)
        } else {
            Bytes {
                repr: Repr::Shared {
                    end: v.len(),
                    data: Arc::from(v),
                    start: 0,
                },
            }
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_allocation() {
        let v: Vec<u8> = (0..64).collect();
        let b = Bytes::from(v);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn empty_and_copy() {
        assert!(Bytes::new().is_empty());
        let c = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(c, Bytes::from(vec![9, 9]));
    }

    #[test]
    fn inline_repr_roundtrip() {
        // At and below the inline cap, no allocation is involved; contents
        // and slicing must be indistinguishable from the shared repr.
        let data: Vec<u8> = (0..INLINE_CAP as u8).collect();
        let b = Bytes::copy_from_slice(&data);
        assert_eq!(&b[..], data.as_slice());
        assert_eq!(b.slice(3..7), Bytes::copy_from_slice(&data[3..7]));
        let shared = Bytes::from_shared(Arc::from(data.as_slice()), data.len());
        assert_eq!(b, shared, "equality is by contents, not by repr");
        // One past the cap spills to the shared repr.
        let big = Bytes::copy_from_slice(&[7u8; INLINE_CAP + 1]);
        assert_eq!(big.len(), INLINE_CAP + 1);
        assert_eq!(big.slice(..4), Bytes::copy_from_slice(&[7; 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }

    #[test]
    fn from_shared_is_zero_copy() {
        let arc: Arc<[u8]> = Arc::from(vec![1u8, 2, 3, 4]);
        let b = Bytes::from_shared(arc.clone(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Arc::strong_count(&arc), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_shared_bounds_checked() {
        Bytes::from_shared(Arc::from(vec![0u8; 2]), 3);
    }
}
