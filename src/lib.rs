//! # rvma — Remote Virtual Memory Access (facade crate)
//!
//! A from-scratch Rust reproduction of *"RVMA: Remote Virtual Memory Access"*
//! (Grant, Levenhagen, Dosanjh, Widener — Sandia National Laboratories,
//! IPDPS 2021). This crate re-exports the workspace's subsystems:
//!
//! * [`core`] — the paper's contribution: virtual mailboxes, receiver-posted
//!   buffer buckets, threshold-based completion with completion pointers,
//!   epochs, and hardware-style fault-tolerant rewind, plus a real
//!   multi-threaded software endpoint and loopback transport.
//! * [`sim`] — a deterministic discrete-event simulation engine (the SST-core
//!   substitute).
//! * [`net`] — packet-level network models: fat-tree, 3-D torus, dragonfly
//!   and HyperX topologies with static and adaptive routing.
//! * [`nic`] — simulated RDMA and RVMA NIC models on top of `sim`/`net`.
//! * [`motifs`] — Sweep3D and Halo3D application motifs and the motif runner
//!   used for the paper's Figs. 7 and 8.
//! * [`microbench`] — calibrated Verbs/UCX cost models for Figs. 4–6.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use rvma_core as core;
pub use rvma_microbench as microbench;
pub use rvma_motifs as motifs;
pub use rvma_net as net;
pub use rvma_nic as nic;
pub use rvma_sim as sim;
